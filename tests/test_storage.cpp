/**
 * @file
 * Durability suite for the out-of-core Phase-1 storage layer
 * (core/shard_store.hpp) and the sharded surrogate cache
 * (core/cache.hpp): on-disk format round-trips, corruption rejection,
 * streamed ≡ in-RAM bitwise equivalence, crash recovery, and
 * concurrent cache access.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

#include "common/error.hpp"
#include "common/mapped_file.hpp"
#include "common/parallel_context.hpp"
#include "core/cache.hpp"
#include "core/phase1.hpp"
#include "core/shard_store.hpp"
#include "workload/algorithm.hpp"

using namespace mm;
namespace fs = std::filesystem;

namespace {

/** Fresh scratch directory, removed on destruction. */
struct TempDir
{
    std::string path;

    explicit TempDir(const std::string &tag)
    {
        static std::atomic<uint64_t> counter{0};
        path = (fs::temp_directory_path()
                / ("mm_storage_" + tag + "_"
                   + std::to_string(::getpid()) + "_"
                   + std::to_string(counter.fetch_add(1))))
                   .string();
        fs::remove_all(path);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

/** Deterministic random dataset written as a shard store. */
ShardLayout
writeRandomStore(const std::string &dir, size_t rows, size_t features,
                 size_t outputs, size_t shardSize, Matrix &xAll,
                 Matrix &yAll)
{
    ShardLayout layout;
    layout.rows = rows;
    layout.features = features;
    layout.outputs = outputs;
    layout.shardSize = shardSize;
    layout.shardCount = (rows + shardSize - 1) / shardSize;
    layout.testRows = rows / 10;
    layout.trainRows = rows - layout.testRows;
    layout.featureLogPrefix = 2;
    layout.configHash = fnv1a64("test-store");

    Rng rng(rows * 31 + shardSize);
    xAll.resize(rows, features);
    yAll.resize(rows, outputs);
    for (size_t r = 0; r < rows; ++r) {
        for (size_t c = 0; c < features; ++c)
            xAll(r, c) = float(rng.gaussian());
        for (size_t c = 0; c < outputs; ++c)
            yAll(r, c) = float(rng.gaussian());
    }

    ShardStoreWriter writer(dir, layout);
    Matrix sx, sy;
    for (size_t s = 0; s < layout.shardCount; ++s) {
        size_t count = size_t(layout.shardRows(s));
        sx.ensureShape(count, features);
        sy.ensureShape(count, outputs);
        for (size_t r = 0; r < count; ++r) {
            size_t g = s * shardSize + r;
            std::copy(xAll.row(g).begin(), xAll.row(g).end(),
                      sx.row(r).begin());
            std::copy(yAll.row(g).begin(), yAll.row(g).end(),
                      sy.row(r).begin());
        }
        writer.writeShard(s, sx, sy);
    }
    writer.commit(
        Normalizer::fromMoments(std::vector<double>(features, 0.0),
                                std::vector<double>(features, 1.0)),
        Normalizer::fromMoments(std::vector<double>(outputs, 0.0),
                                std::vector<double>(outputs, 1.0)));
    return layout;
}

/** Flip one byte in the middle of @p file. */
void
flipByte(const std::string &file, std::streamoff offset)
{
    std::fstream f(file,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(bool(f)) << file;
    f.seekg(0, std::ios::end);
    std::streamoff size = f.tellg();
    ASSERT_GT(size, offset);
    f.seekg(offset);
    char b = 0;
    f.read(&b, 1);
    b = char(b ^ 0x40);
    f.seekp(offset);
    f.write(&b, 1);
}

/** Truncate @p file to @p keep bytes. */
void
truncateFile(const std::string &file, uintmax_t keep)
{
    fs::resize_file(file, keep);
}

/** A tiny but structurally valid surrogate for cache tests. */
Surrogate
tinySurrogate(uint64_t seed, size_t featureDim)
{
    Rng rng(seed);
    Mlp net(featureDim,
            {{8, Activation::ReLU}, {1, Activation::Identity}}, rng);
    std::vector<double> zeros(featureDim, 0.0), ones(featureDim, 1.0);
    Normalizer inNorm = Normalizer::fromMoments(zeros, ones);
    Normalizer outNorm = Normalizer::fromMoments({0.0}, {1.0});
    return Surrogate(std::move(net), FeatureTransform{2}, std::move(inNorm),
                     std::move(outNorm), 0);
}

} // namespace

// ---------------------------------------------------------------------------
// Shard format: round trips
// ---------------------------------------------------------------------------

TEST(ShardStore, RoundTripAcrossShardSizes)
{
    // Includes samples % shardSize != 0 (partial final shard) and
    // shardSize == 1 (one row per file).
    for (auto [rows, shardSize] :
         {std::pair<size_t, size_t>{30, 7}, {64, 16}, {10, 1}, {130, 64},
          {33, 100}}) {
        TempDir dir("roundtrip");
        Matrix xAll, yAll;
        writeRandomStore(dir.path, rows, 5, 3, shardSize, xAll, yAll);

        ShardedDatasetReader reader(dir.path, 2);
        EXPECT_EQ(reader.layout().rows, rows);
        EXPECT_EQ(reader.layout().shardCount,
                  (rows + shardSize - 1) / shardSize);

        Matrix x, y;
        reader.materialize(0, rows, x, y);
        EXPECT_EQ(maxAbsDiff(x, xAll), 0.0)
            << "rows=" << rows << " shardSize=" << shardSize;
        EXPECT_EQ(maxAbsDiff(y, yAll), 0.0);

        // Random access via the LRU agrees with sequential reads.
        Rng rng(99);
        for (int i = 0; i < 50; ++i) {
            size_t r = size_t(rng.uniformInt(0, int64_t(rows) - 1));
            auto xr = reader.xRow(r);
            auto yr = reader.yRow(r);
            ASSERT_EQ(xr.size(), 5u);
            for (size_t c = 0; c < xr.size(); ++c)
                EXPECT_EQ(xr[c], xAll(r, c));
            for (size_t c = 0; c < yr.size(); ++c)
                EXPECT_EQ(yr[c], yAll(r, c));
        }
    }
}

TEST(ShardStore, ManifestSurvivesReopen)
{
    TempDir dir("manifest");
    Matrix xAll, yAll;
    ShardLayout written =
        writeRandomStore(dir.path, 50, 4, 2, 16, xAll, yAll);

    auto m = ShardedDatasetReader::tryReadManifest(dir.path);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->layout.rows, written.rows);
    EXPECT_EQ(m->layout.trainRows, written.trainRows);
    EXPECT_EQ(m->layout.configHash, written.configHash);
    EXPECT_EQ(m->inputNorm.dim(), 4u);
    EXPECT_EQ(m->outputNorm.dim(), 2u);
}

// ---------------------------------------------------------------------------
// Shard format: corruption rejection (never UB, never garbage).
// Formerly death tests: corruption now surfaces as typed exceptions
// (common/error.hpp) so callers can quarantine and heal instead of
// dying — these assert the exact type, its triage payload, and the
// quarantine side effect.
// ---------------------------------------------------------------------------

TEST(ShardStoreTypedErrors, TruncatedShardThrowsShortRead)
{
    TempDir dir("truncated");
    Matrix xAll, yAll;
    writeRandomStore(dir.path, 40, 5, 3, 16, xAll, yAll);

    std::string victim = shardPath(dir.path, 1);
    truncateFile(victim, fs::file_size(victim) / 2);

    ShardedDatasetReader reader(dir.path, 2);
    Matrix x, y;
    try {
        reader.readShard(1, x, y);
        FAIL() << "truncated shard read did not throw";
    } catch (const CorruptionError &e) {
        EXPECT_EQ(e.kind(), CorruptionError::Kind::ShortRead);
        EXPECT_EQ(e.path(), victim);
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
    // Provably-bad bytes are moved aside so a restart regenerates them.
    EXPECT_FALSE(fs::exists(victim));
    EXPECT_TRUE(fs::exists(victim + ".quarantine"));
    EXPECT_EQ(reader.quarantinedShards(), 1u);
}

TEST(ShardStoreTypedErrors, FlippedPayloadByteThrowsChecksumMismatch)
{
    TempDir dir("flipped");
    Matrix xAll, yAll;
    writeRandomStore(dir.path, 40, 5, 3, 16, xAll, yAll);

    // Flip a byte deep in the payload (well past header + body header).
    std::string victim = shardPath(dir.path, 0);
    flipByte(victim, std::streamoff(fs::file_size(victim) / 2));

    ShardedDatasetReader reader(dir.path, 2);
    Matrix x, y;
    try {
        reader.readShard(0, x, y);
        FAIL() << "flipped shard read did not throw";
    } catch (const CorruptionError &e) {
        EXPECT_EQ(e.kind(), CorruptionError::Kind::ChecksumMismatch);
        EXPECT_NE(e.expectedChecksum(), e.actualChecksum());
        EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                  std::string::npos);
    }
    EXPECT_TRUE(fs::exists(victim + ".quarantine"));
}

TEST(ShardStoreTypedErrors, WrongVersionHeaderThrowsWithoutQuarantine)
{
    TempDir dir("version");
    Matrix xAll, yAll;
    writeRandomStore(dir.path, 40, 5, 3, 16, xAll, yAll);

    // Byte 4 is the low byte of the little-endian version field.
    std::string victim = shardPath(dir.path, 0);
    flipByte(victim, 4);

    ShardedDatasetReader reader(dir.path, 2);
    Matrix x, y;
    try {
        reader.readShard(0, x, y);
        FAIL() << "wrong-version shard read did not throw";
    } catch (const CorruptionError &e) {
        EXPECT_EQ(e.kind(), CorruptionError::Kind::BadHeader);
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
    // A bad header may be a foreign or future-version file: never
    // destroyed, never quarantined.
    EXPECT_TRUE(fs::exists(victim));
    EXPECT_FALSE(fs::exists(victim + ".quarantine"));
    EXPECT_EQ(reader.quarantinedShards(), 0u);
}

TEST(ShardStoreTypedErrors, MissingMiddleShardThrowsIoError)
{
    TempDir dir("missing");
    Matrix xAll, yAll;
    writeRandomStore(dir.path, 60, 5, 3, 16, xAll, yAll);

    fs::remove(shardPath(dir.path, 2));
    try {
        ShardedDatasetReader reader(dir.path, 2);
        FAIL() << "reader opened a store with a missing shard";
    } catch (const IoError &e) {
        EXPECT_EQ(e.errnoValue(), ENOENT);
        EXPECT_EQ(e.path(), shardPath(dir.path, 2));
        EXPECT_FALSE(e.transient());
    }
}

TEST(ShardStore, UncommittedStoreIsNotAManifest)
{
    // A crash before commit() leaves shards but no manifest: the
    // reader must refuse, and tryReadManifest reports "partial run".
    TempDir dir("partial");
    ShardLayout layout;
    layout.rows = 20;
    layout.features = 3;
    layout.outputs = 2;
    layout.shardSize = 10;
    layout.shardCount = 2;
    layout.trainRows = 18;
    layout.testRows = 2;
    layout.configHash = 1;
    ShardStoreWriter writer(dir.path, layout);
    Matrix x(10, 3), y(10, 2);
    writer.writeShard(0, x, y);
    // no commit()
    EXPECT_FALSE(
        ShardedDatasetReader::tryReadManifest(dir.path).has_value());
}

TEST(ChecksummedBlob, RejectsCorruptSizeFieldWithoutAllocating)
{
    // A flipped high byte of the u64 size field must produce a
    // diagnostic, not a ~256 GiB std::string allocation (bad_alloc).
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    writeChecksummedBlob(ss, 0xAB12CD34u, 1, "payload");
    std::string bytes = ss.str();
    bytes[12] = '\x40'; // size field occupies offsets 8..15
    std::istringstream is(bytes);
    std::string err;
    EXPECT_FALSE(readChecksummedBlob(is, 0xAB12CD34u, 1, &err).has_value());
    EXPECT_NE(err.find("body declares"), std::string::npos);
}

TEST(ShardStoreTypedErrors, CorruptShardSizeFieldThrowsShortRead)
{
    TempDir dir("badsize");
    Matrix xAll, yAll;
    writeRandomStore(dir.path, 40, 5, 3, 16, xAll, yAll);
    // A flipped high byte of the size field declares far more body
    // than the file holds — indistinguishable from truncation, and
    // must never turn into a giant allocation.
    std::string victim = shardPath(dir.path, 0);
    flipByte(victim, 12); // high-ish byte of body size

    ShardedDatasetReader reader(dir.path, 2);
    Matrix x, y;
    try {
        reader.readShard(0, x, y);
        FAIL() << "corrupt-size shard read did not throw";
    } catch (const CorruptionError &e) {
        EXPECT_EQ(e.kind(), CorruptionError::Kind::ShortRead);
        EXPECT_NE(std::string(e.what()).find("body declares"),
                  std::string::npos);
    }
    EXPECT_TRUE(fs::exists(victim + ".quarantine"));
}

TEST(ChecksummedBlob, RejectsTrailingBytes)
{
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    writeChecksummedBlob(ss, 0xAB12CD34u, 1, "payload");
    ss.write("junk", 4);
    ss.seekg(0);
    std::string err;
    EXPECT_FALSE(
        readChecksummedBlob(ss, 0xAB12CD34u, 1, &err).has_value());
    EXPECT_NE(err.find("trailing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Streamed ≡ in-RAM equivalence
// ---------------------------------------------------------------------------

TEST(StreamedDatasetEquivalence, BitwiseIdenticalToInRamAtAnyLaneCount)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    DatasetConfig cfg;
    cfg.samples = 600;
    cfg.problemCount = 3;
    cfg.eliteFraction = 0.2;
    cfg.seed = 17;
    cfg.shardSize = 128; // 600 % 128 != 0: partial final shard
    SurrogateDataset ram = generateDataset(arch, conv1dAlgo(), cfg);

    for (size_t lanes : {1u, 4u, 8u}) {
        TempDir dir("equiv");
        DatasetConfig scfg = cfg;
        scfg.streamDir = dir.path;
        ParallelContext ctx(lanes);
        StreamedDataset sd =
            generateDatasetStreamed(arch, conv1dAlgo(), scfg, &ctx);
        EXPECT_FALSE(sd.reused);
        ASSERT_EQ(sd.trainRows, ram.xTrain.rows());
        ASSERT_EQ(sd.testRows, ram.xTest.rows());
        EXPECT_EQ(sd.featureLogPrefix, ram.featureLogPrefix);

        // Fitted normalizers must match to the last bit.
        for (size_t c = 0; c < sd.featureCount; ++c) {
            EXPECT_EQ(sd.inputNorm.mean(c), ram.inputNorm.mean(c))
                << "lanes=" << lanes << " col=" << c;
            EXPECT_EQ(sd.inputNorm.std(c), ram.inputNorm.std(c));
        }
        for (size_t c = 0; c < sd.outputCount; ++c) {
            EXPECT_EQ(sd.outputNorm.mean(c), ram.outputNorm.mean(c));
            EXPECT_EQ(sd.outputNorm.std(c), ram.outputNorm.std(c));
        }

        // Materialized + normalized splits must match bitwise.
        ShardedDatasetReader reader(sd.dir);
        Matrix x, y;
        reader.materialize(0, sd.trainRows, x, y);
        sd.inputNorm.applyInPlace(x);
        sd.outputNorm.applyInPlace(y);
        EXPECT_EQ(maxAbsDiff(x, ram.xTrain), 0.0) << "lanes=" << lanes;
        EXPECT_EQ(maxAbsDiff(y, ram.yTrain), 0.0) << "lanes=" << lanes;

        reader.materialize(sd.trainRows, sd.testRows, x, y);
        sd.inputNorm.applyInPlace(x);
        sd.outputNorm.applyInPlace(y);
        EXPECT_EQ(maxAbsDiff(x, ram.xTest), 0.0) << "lanes=" << lanes;
        EXPECT_EQ(maxAbsDiff(y, ram.yTest), 0.0) << "lanes=" << lanes;
    }
}

TEST(StreamedDatasetEquivalence, EndToEndPhase1MatchesInRam)
{
    // The full streamed pipeline (shards -> streaming normalizer fit ->
    // ShardBatchSource mini-batches) must train the exact surrogate the
    // in-RAM path trains, at any lane count.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Phase1Config cfg;
    cfg.hidden = {16, 16};
    cfg.train.epochs = 3;
    cfg.data.samples = 400;
    cfg.data.problemCount = 3;
    cfg.data.seed = 5;
    cfg.seed = 9;
    cfg.data.shardSize = 96;

    Phase1Result ram = trainSurrogate(arch, conv1dAlgo(), cfg);

    std::vector<double> z(ram.surrogate.featureCount(), 0.25);
    double ramPred = ram.surrogate.predictNormEdp(z);

    for (int threads : {1, 4}) {
        TempDir dir("e2e");
        Phase1Config scfg = cfg;
        scfg.data.streamDir = dir.path;
        scfg.threads = threads;
        Phase1Result streamed = trainSurrogate(arch, conv1dAlgo(), scfg);

        ASSERT_EQ(streamed.history.size(), ram.history.size());
        for (size_t e = 0; e < ram.history.size(); ++e) {
            EXPECT_EQ(streamed.history[e].trainLoss,
                      ram.history[e].trainLoss)
                << "threads=" << threads << " epoch=" << e;
            EXPECT_EQ(streamed.history[e].testLoss,
                      ram.history[e].testLoss);
        }
        EXPECT_EQ(streamed.surrogate.predictNormEdp(z), ramPred)
            << "threads=" << threads;
    }
}

TEST(StreamedDatasetEquivalence, WindowedShuffleIsPathInvariant)
{
    // The windowed shuffle changes batch composition (by design) but
    // must do so identically for the in-RAM and streamed paths.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Phase1Config cfg;
    cfg.hidden = {16};
    cfg.train.epochs = 2;
    cfg.train.shuffleWindow = 100;
    cfg.data.samples = 300;
    cfg.data.problemCount = 2;
    cfg.data.shardSize = 50; // window spans exactly two shards

    Phase1Result ram = trainSurrogate(arch, conv1dAlgo(), cfg);

    TempDir dir("window");
    Phase1Config scfg = cfg;
    scfg.data.streamDir = dir.path;
    Phase1Result streamed = trainSurrogate(arch, conv1dAlgo(), scfg);

    std::vector<double> z(ram.surrogate.featureCount(), -0.5);
    EXPECT_EQ(streamed.surrogate.predictNormEdp(z),
              ram.surrogate.predictNormEdp(z));
    EXPECT_EQ(streamed.history.back().trainLoss,
              ram.history.back().trainLoss);
}

// ---------------------------------------------------------------------------
// Crash recovery / restartability
// ---------------------------------------------------------------------------

TEST(StreamedDatasetRecovery, CommittedStoreIsReusedWithoutRelabeling)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dir("reuse");
    DatasetConfig cfg;
    cfg.samples = 200;
    cfg.problemCount = 2;
    cfg.shardSize = 64;
    cfg.streamDir = dir.path;

    StreamedDataset first = generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    EXPECT_FALSE(first.reused);
    auto mtime = fs::last_write_time(shardPath(dir.path, 0));

    StreamedDataset second =
        generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    EXPECT_TRUE(second.reused);
    EXPECT_EQ(fs::last_write_time(shardPath(dir.path, 0)), mtime);
    EXPECT_EQ(second.inputNorm.mean(0), first.inputNorm.mean(0));
}

TEST(StreamedDatasetRecovery, ResumesAfterCrashMidGeneration)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dir("resume");
    DatasetConfig cfg;
    cfg.samples = 300;
    cfg.problemCount = 2;
    cfg.shardSize = 64;
    cfg.streamDir = dir.path;

    StreamedDataset full = generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    ShardedDatasetReader committed(full.dir);
    Matrix xa, ya;
    committed.materialize(0, cfg.samples, xa, ya);

    // Simulate a crash: manifest gone, one shard gone, one torn.
    fs::remove(manifestPath(dir.path));
    fs::remove(shardPath(dir.path, 1));
    truncateFile(shardPath(dir.path, 3),
                 fs::file_size(shardPath(dir.path, 3)) - 5);
    auto shard2Time = fs::last_write_time(shardPath(dir.path, 2));

    StreamedDataset resumed =
        generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    EXPECT_FALSE(resumed.reused);
    // Intact shards were skipped, not relabeled.
    EXPECT_EQ(fs::last_write_time(shardPath(dir.path, 2)), shard2Time);

    // And the recovered dataset is byte-identical to the original.
    ShardedDatasetReader reader(resumed.dir);
    Matrix xb, yb;
    reader.materialize(0, cfg.samples, xb, yb);
    EXPECT_EQ(maxAbsDiff(xa, xb), 0.0);
    EXPECT_EQ(maxAbsDiff(ya, yb), 0.0);
    EXPECT_EQ(resumed.inputNorm.mean(0), full.inputNorm.mean(0));
}

TEST(StreamedDatasetRecovery, ManifestWithDeletedShardIsRebuilt)
{
    // A committed manifest whose shard files were (partially) deleted
    // must not be trusted: only the missing shards are regenerated.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dir("hollow");
    DatasetConfig cfg;
    cfg.samples = 200;
    cfg.problemCount = 2;
    cfg.shardSize = 64;
    cfg.streamDir = dir.path;

    StreamedDataset full = generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    ShardedDatasetReader committed(full.dir);
    Matrix xa, ya;
    committed.materialize(0, cfg.samples, xa, ya);

    fs::remove(shardPath(dir.path, 1));
    StreamedDataset rebuilt =
        generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    EXPECT_FALSE(rebuilt.reused);

    ShardedDatasetReader reader(rebuilt.dir);
    Matrix xb, yb;
    reader.materialize(0, cfg.samples, xb, yb);
    EXPECT_EQ(maxAbsDiff(xa, xb), 0.0);
    EXPECT_EQ(maxAbsDiff(ya, yb), 0.0);
}

TEST(StreamedDatasetRecovery, CrashedRegenerationForNewConfigSelfHeals)
{
    // Config A committed; a regeneration for config B crashes after
    // rewriting one shard. The directory must not masquerade as a
    // committed store for A: rerunning A regenerates the foreign shard
    // and converges back to A's exact bytes.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dirA("mixed_a"), dirB("mixed_b");
    DatasetConfig cfgA;
    cfgA.samples = 200;
    cfgA.problemCount = 2;
    cfgA.shardSize = 64;
    cfgA.streamDir = dirA.path;
    DatasetConfig cfgB = cfgA;
    cfgB.seed = 777;
    cfgB.streamDir = dirB.path;

    StreamedDataset a = generateDatasetStreamed(arch, conv1dAlgo(), cfgA);
    generateDatasetStreamed(arch, conv1dAlgo(), cfgB);
    ShardedDatasetReader committed(a.dir);
    Matrix xa, ya;
    committed.materialize(0, cfgA.samples, xa, ya);

    // Emulate the crashed B run inside A's directory: B's shard 0
    // lands, A's manifest still present.
    fs::copy_file(shardPath(dirB.path, 0), shardPath(dirA.path, 0),
                  fs::copy_options::overwrite_existing);

    StreamedDataset healed =
        generateDatasetStreamed(arch, conv1dAlgo(), cfgA);
    EXPECT_FALSE(healed.reused);
    ShardedDatasetReader reader(healed.dir);
    Matrix xb, yb;
    reader.materialize(0, cfgA.samples, xb, yb);
    EXPECT_EQ(maxAbsDiff(xa, xb), 0.0);
    EXPECT_EQ(maxAbsDiff(ya, yb), 0.0);
}

TEST(StreamedDatasetRecovery, StaleConfigIsRegenerated)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dir("stale");
    DatasetConfig cfg;
    cfg.samples = 150;
    cfg.problemCount = 2;
    cfg.shardSize = 64;
    cfg.streamDir = dir.path;
    StreamedDataset first = generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    EXPECT_FALSE(first.reused);

    cfg.seed = 999; // different dataset identity, same directory
    StreamedDataset second =
        generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    EXPECT_FALSE(second.reused);

    // The store now answers for the new config.
    auto m = ShardedDatasetReader::tryReadManifest(dir.path);
    ASSERT_TRUE(m.has_value());
    SurrogateDataset ram = generateDataset(arch, conv1dAlgo(), cfg);
    EXPECT_EQ(m->inputNorm.mean(0), ram.inputNorm.mean(0));
}

// ---------------------------------------------------------------------------
// Surrogate cache: tearing, eviction, concurrency
// ---------------------------------------------------------------------------

TEST(ShardedCache, TruncatedEntryIsAMissAndIsRemoved)
{
    TempDir dir("cache_trunc");
    SurrogateCache cache(dir.path, 0);
    Surrogate s = tinySurrogate(1, 6);
    cache.store("key", s);
    ASSERT_TRUE(cache.load("key").has_value());

    // Tear the entry the way a crashed writer without atomic rename
    // would have: keep a prefix only.
    ASSERT_EQ(cache.entryCount(), 1u);
    fs::path entry;
    for (const auto &e : fs::recursive_directory_iterator(dir.path))
        if (e.is_regular_file())
            entry = e.path();
    truncateFile(entry.string(), fs::file_size(entry) / 2);

    EXPECT_FALSE(cache.load("key").has_value());
    // The poisoned file was dropped so it cannot flap.
    EXPECT_EQ(cache.entryCount(), 0u);
}

TEST(ShardedCache, FlippedByteIsAMiss)
{
    TempDir dir("cache_flip");
    SurrogateCache cache(dir.path, 0);
    cache.store("key", tinySurrogate(2, 6));
    fs::path entry;
    for (const auto &e : fs::recursive_directory_iterator(dir.path))
        if (e.is_regular_file())
            entry = e.path();
    flipByte(entry.string(), std::streamoff(fs::file_size(entry) / 2));
    EXPECT_FALSE(cache.load("key").has_value());
}

TEST(ShardedCache, HashPrefixLayoutAndEviction)
{
    TempDir dir("cache_evict");
    SurrogateCache cache(dir.path, 2); // explicit cap, env-independent
    Surrogate s = tinySurrogate(3, 6);

    cache.store("a", s);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.store("b", s);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Touch "a" so "b" is the LRU entry when "c" lands.
    ASSERT_TRUE(cache.load("a").has_value());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.store("c", s);

    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_TRUE(cache.load("a").has_value());
    EXPECT_FALSE(cache.load("b").has_value());
    EXPECT_TRUE(cache.load("c").has_value());

    // Entries live in two-hex-char shard subdirectories.
    bool sawShardDir = false;
    for (const auto &e : fs::directory_iterator(dir.path))
        if (e.is_directory() && e.path().filename().string().size() == 2)
            sawShardDir = true;
    EXPECT_TRUE(sawShardDir);
}

TEST(ShardedCache, ConcurrentStoreLoadEvictNeverYieldsTornEntries)
{
    TempDir dir("cache_race");
    constexpr int kThreads = 8;
    constexpr int kIters = 40;
    constexpr size_t kKeys = 4;

    // Per-key feature dims so a loaded entry proves which store won —
    // and that it was complete.
    std::vector<size_t> dims = {4, 6, 8, 10};
    std::vector<Surrogate> fixtures;
    for (size_t k = 0; k < kKeys; ++k)
        fixtures.push_back(tinySurrogate(100 + k, dims[k]));

    std::atomic<int> loads{0}, hits{0}, failures{0};
    auto worker = [&](int tid) {
        SurrogateCache cache(dir.path, 3); // cap < keys: eviction races
        Rng rng(uint64_t(tid) * 7919 + 1);
        for (int i = 0; i < kIters; ++i) {
            size_t k = size_t(rng.uniformInt(0, int64_t(kKeys) - 1));
            std::string key = "fp-" + std::to_string(k);
            if (rng.bernoulli(0.5)) {
                cache.store(key, fixtures[k]);
            } else {
                loads.fetch_add(1);
                auto loaded = cache.load(key);
                if (!loaded.has_value())
                    continue; // miss/evicted: legal
                hits.fetch_add(1);
                // Every successful load must be fully formed: right
                // shape for its key and a finite prediction.
                if (loaded->featureCount() != dims[k]
                    || loaded->outputCount() != 1) {
                    failures.fetch_add(1);
                    continue;
                }
                std::vector<double> z(dims[k], 0.1);
                if (!std::isfinite(loaded->predictNormEdp(z)))
                    failures.fetch_add(1);
            }
        }
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker, t);
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(failures.load(), 0)
        << "torn or mismatched entries observed under concurrency";
    EXPECT_GT(loads.load(), 0);
}

TEST(ShardedCache, MissOnEmptyAndDisabled)
{
    TempDir dir("cache_misc");
    SurrogateCache cache(dir.path, 0);
    EXPECT_FALSE(cache.load("absent").has_value());

    setenv("MM_NO_CACHE", "1", 1);
    EXPECT_TRUE(SurrogateCache::disabled());
    EXPECT_FALSE(cache.load("absent").has_value());
    cache.store("absent", tinySurrogate(7, 4));
    setenv("MM_NO_CACHE", "0", 1);
    EXPECT_FALSE(cache.load("absent").has_value()); // store was a no-op
}

// ---------------------------------------------------------------------------
// Warm loads (mmap + fallback)
// ---------------------------------------------------------------------------

TEST(MappedFileIO, MapAndFallbackSeeTheSameBytes)
{
    TempDir dir("mmap");
    fs::create_directories(dir.path);
    const std::string path = dir.path + "/blob.bin";
    std::string payload("mapped-bytes\0with\x01junk", 22);
    {
        std::ofstream os(path, std::ios::binary);
        os.write(payload.data(), std::streamsize(payload.size()));
    }

    auto mapped = MappedFile::open(path);
    ASSERT_TRUE(mapped.has_value());
    EXPECT_TRUE(mapped->isMapped());
    ASSERT_EQ(mapped->bytes().size(), payload.size());
    EXPECT_EQ(std::string(mapped->bytes().data(), mapped->bytes().size()),
              payload);

    setenv("MM_NO_MMAP", "1", 1);
    auto copied = MappedFile::open(path);
    setenv("MM_NO_MMAP", "0", 1);
    ASSERT_TRUE(copied.has_value());
    EXPECT_FALSE(copied->isMapped());
    ASSERT_EQ(copied->bytes().size(), payload.size());
    EXPECT_EQ(std::string(copied->bytes().data(), copied->bytes().size()),
              payload);

    EXPECT_FALSE(MappedFile::open(dir.path + "/absent").has_value());
}

TEST(MappedFileIO, SurrogateWarmLoadMatchesStreamLoad)
{
    Surrogate s = tinySurrogate(21, 6);
    std::ostringstream os(std::ios::binary);
    s.save(os);
    const std::string bytes = os.str();

    auto warm =
        Surrogate::tryLoad(std::span<const char>(bytes.data(), bytes.size()));
    ASSERT_TRUE(warm.has_value());
    std::istringstream is(bytes);
    auto cold = Surrogate::tryLoad(is);
    ASSERT_TRUE(cold.has_value());

    std::vector<double> z(6, 0.3);
    EXPECT_EQ(warm->predictNormEdp(z), cold->predictNormEdp(z));

    // Corruption is still rejected through the view path.
    std::string torn = bytes.substr(0, bytes.size() / 2);
    EXPECT_FALSE(
        Surrogate::tryLoad(std::span<const char>(torn.data(), torn.size()))
            .has_value());
    std::string flipped = bytes;
    flipped[flipped.size() / 2] =
        char(flipped[flipped.size() / 2] ^ 0x20);
    EXPECT_FALSE(Surrogate::tryLoad(
                     std::span<const char>(flipped.data(), flipped.size()))
                     .has_value());
}

TEST(MappedFileIO, ShardReadsWorkWithMmapDisabled)
{
    // The portable fallback must decode the exact same shards.
    TempDir dir("nommap");
    Matrix xAll, yAll;
    writeRandomStore(dir.path, 50, 5, 3, 16, xAll, yAll);

    setenv("MM_NO_MMAP", "1", 1);
    ShardedDatasetReader reader(dir.path, 2);
    Matrix x, y;
    reader.materialize(0, 50, x, y);
    setenv("MM_NO_MMAP", "0", 1);
    EXPECT_EQ(maxAbsDiff(x, xAll), 0.0);
    EXPECT_EQ(maxAbsDiff(y, yAll), 0.0);
}

// ---------------------------------------------------------------------------
// Concurrent shard cache + parallel gather
// ---------------------------------------------------------------------------

TEST(ConcurrentShardCache, MultiThreadGatherStressSeesOnlyCorrectRows)
{
    // Many threads hammer one reader through a deliberately tiny cache
    // (constant eviction) — every gathered row must still be exactly
    // the row that was written, and pinned shards must stay alive
    // across evictions (ASan/TSan cover the lifetime claims).
    TempDir dir("gather_stress");
    constexpr size_t kRows = 600, kF = 5, kO = 3, kShard = 32;
    Matrix xAll, yAll;
    writeRandomStore(dir.path, kRows, kF, kO, kShard, xAll, yAll);

    ShardedDatasetReader reader(dir.path, 3);
    constexpr int kThreads = 8;
    std::atomic<int> mismatches{0};
    auto worker = [&](int tid) {
        ShardBatchSource source(reader, 0, kRows);
        Rng rng(uint64_t(tid) * 131 + 7);
        std::vector<size_t> idx(kRows);
        for (size_t i = 0; i < kRows; ++i)
            idx[i] = i;
        Matrix bx, by;
        for (int iter = 0; iter < 30; ++iter) {
            rng.shuffle(idx);
            const size_t n = 96;
            source.gather(idx, 0, n, bx, by, nullptr);
            for (size_t r = 0; r < n; ++r) {
                for (size_t c = 0; c < kF; ++c)
                    if (bx(r, c) != xAll(idx[r], c))
                        mismatches.fetch_add(1);
                for (size_t c = 0; c < kO; ++c)
                    if (by(r, c) != yAll(idx[r], c))
                        mismatches.fetch_add(1);
            }
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(worker, t);
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentShardCache, ParallelGatherMatchesSerialBitwise)
{
    TempDir dir("gather_par");
    constexpr size_t kRows = 500, kF = 7, kO = 2, kShard = 64;
    Matrix xAll, yAll;
    writeRandomStore(dir.path, kRows, kF, kO, kShard, xAll, yAll);

    ShardedDatasetReader reader(dir.path, 2);
    ShardBatchSource source(reader, 0, kRows);
    Rng rng(404);
    std::vector<size_t> idx(kRows);
    for (size_t i = 0; i < kRows; ++i)
        idx[i] = i;
    rng.shuffle(idx);

    Matrix sx, sy;
    source.gather(idx, 3, 256, sx, sy, nullptr);
    for (size_t lanes : {2u, 4u, 8u}) {
        ParallelContext ctx(lanes);
        Matrix px, py;
        source.gather(idx, 3, 256, px, py, &ctx);
        EXPECT_EQ(maxAbsDiff(px, sx), 0.0) << "lanes=" << lanes;
        EXPECT_EQ(maxAbsDiff(py, sy), 0.0) << "lanes=" << lanes;
    }
}

TEST(StreamedDatasetEquivalence, PrefetchAndParallelGatherKeepPhase1Bitwise)
{
    // The acceptance bar of the concurrent out-of-core path: with the
    // background prefetcher on, a tiny (always-evicting) shard cache,
    // and parallel gathers, the streamed pipeline still trains the
    // exact surrogate the in-RAM path trains, at 1/4/8 lanes.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Phase1Config cfg;
    cfg.hidden = {16, 16};
    cfg.train.epochs = 3;
    cfg.data.samples = 400;
    cfg.data.problemCount = 3;
    cfg.data.seed = 5;
    cfg.seed = 9;
    cfg.data.shardSize = 64; // 7 shards vs a 2-shard cache

    Phase1Result ram = trainSurrogate(arch, conv1dAlgo(), cfg);
    std::vector<double> z(ram.surrogate.featureCount(), 0.25);
    double ramPred = ram.surrogate.predictNormEdp(z);

    setenv("MM_PREFETCH_SHARDS", "3", 1);
    setenv("MM_SHARD_CACHE", "2", 1);
    for (int threads : {1, 4, 8}) {
        TempDir dir("prefetch_e2e");
        Phase1Config scfg = cfg;
        scfg.data.streamDir = dir.path;
        scfg.threads = threads;
        Phase1Result streamed = trainSurrogate(arch, conv1dAlgo(), scfg);

        ASSERT_EQ(streamed.history.size(), ram.history.size());
        for (size_t e = 0; e < ram.history.size(); ++e) {
            EXPECT_EQ(streamed.history[e].trainLoss,
                      ram.history[e].trainLoss)
                << "threads=" << threads << " epoch=" << e;
            EXPECT_EQ(streamed.history[e].testLoss,
                      ram.history[e].testLoss);
        }
        EXPECT_EQ(streamed.surrogate.predictNormEdp(z), ramPred)
            << "threads=" << threads;
    }
    unsetenv("MM_PREFETCH_SHARDS");
    unsetenv("MM_SHARD_CACHE");
}

// ---------------------------------------------------------------------------
// Prefetch request queue
// ---------------------------------------------------------------------------

namespace {

/** A committed 6-shard store for the prefetch-queue tests. */
StreamedDataset
sixShardStore(const std::string &dir)
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    DatasetConfig cfg;
    cfg.samples = 384;
    cfg.problemCount = 2;
    cfg.seed = 23;
    cfg.shardSize = 64;
    cfg.streamDir = dir;
    return generateDatasetStreamed(arch, conv1dAlgo(), cfg);
}

/** Spin until the reader warmed @p expected shards (10 s timeout). */
void
awaitPrefetched(const ShardedDatasetReader &reader, uint64_t expected)
{
    for (int spin = 0; spin < 1000 && reader.prefetchedShards() < expected;
         ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

} // namespace

TEST(PrefetchQueue, BackToBackPrefetchesAllEventuallyWarmTheCache)
{
    // Regression: prefetch() used to hold a single drop-while-busy
    // slot — any request issued while the warm-up thread was decoding
    // was silently lost, which under epoch-steady load meant *most*
    // prefetches. The bounded FIFO must drain every back-to-back
    // request.
    TempDir dir("prefetch_fifo");
    StreamedDataset sd = sixShardStore(dir.path);
    ASSERT_EQ(sd.shardCount, 6u);

    ShardedDatasetReader reader(sd.dir, /*cacheShards=*/8,
                                /*prefetchShards=*/3);
    // One bulk request to occupy the worker, then six distinct singles
    // fired back-to-back: the pre-FIFO code dropped every request that
    // arrived while the worker was still busy with the first.
    reader.prefetch({0, 1, 2, 3, 4, 5});
    for (size_t s = 0; s < 6; ++s)
        reader.prefetch({s});

    const uint64_t expected = 12; // 6 (bulk) + 6 (singles)
    awaitPrefetched(reader, expected);
    EXPECT_EQ(reader.prefetchedShards(), expected);
    EXPECT_EQ(reader.droppedPrefetches(), 0u);
    EXPECT_EQ(reader.pendingPrefetches(), 0u);
}

TEST(PrefetchQueue, IdenticalPendingRequestsCoalesce)
{
    TempDir dir("prefetch_coalesce");
    StreamedDataset sd = sixShardStore(dir.path);
    ASSERT_EQ(sd.shardCount, 6u);

    ShardedDatasetReader reader(sd.dir, /*cacheShards=*/8,
                                /*prefetchShards=*/3);
    // Occupy the worker with a bulk decode, then repeat one identical
    // request: while it waits in the queue, duplicates must coalesce
    // instead of piling up (at most the bulk remainder + one single
    // can ever be pending).
    reader.prefetch({0, 1, 2, 3, 4, 5});
    for (int repeat = 0; repeat < 5; ++repeat)
        reader.prefetch({2});
    EXPECT_LE(reader.pendingPrefetches(), 2u);

    // Whatever coalesced still warms the cache at least once; nothing
    // overflowed the (deep enough) queue.
    awaitPrefetched(reader, 7);
    EXPECT_GE(reader.prefetchedShards(), 7u);
    EXPECT_EQ(reader.droppedPrefetches(), 0u);
}

// ---------------------------------------------------------------------------
// Double-buffered generation
// ---------------------------------------------------------------------------

namespace {

/** Raw bytes of @p path. */
std::string
slurpFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

} // namespace

TEST(OverlappedGeneration, ByteIdenticalToSerializedWriter)
{
    // The background writer must produce the exact files the inline
    // writer produces — shard for shard, byte for byte, manifest
    // included.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dirA("overlap_on"), dirB("overlap_off");
    DatasetConfig cfg;
    cfg.samples = 300;
    cfg.problemCount = 2;
    cfg.shardSize = 64;

    DatasetConfig on = cfg;
    on.streamDir = dirA.path;
    on.overlapStreamWrites = true;
    DatasetConfig off = cfg;
    off.streamDir = dirB.path;
    off.overlapStreamWrites = false;

    ParallelContext ctx(4);
    StreamedDataset a = generateDatasetStreamed(arch, conv1dAlgo(), on, &ctx);
    StreamedDataset b =
        generateDatasetStreamed(arch, conv1dAlgo(), off, &ctx);
    EXPECT_FALSE(a.reused);
    EXPECT_FALSE(b.reused);
    ASSERT_EQ(a.shardCount, b.shardCount);
    for (size_t s = 0; s < a.shardCount; ++s) {
        EXPECT_EQ(slurpFile(shardPath(dirA.path, s)),
                  slurpFile(shardPath(dirB.path, s)))
            << "shard " << s;
    }
    EXPECT_EQ(slurpFile(manifestPath(dirA.path)),
              slurpFile(manifestPath(dirB.path)));
}

TEST(OverlappedGeneration, CrashResumeWithWriterThreadIsByteIdentical)
{
    // Crash emulation against the overlapped writer: kill the manifest
    // and both a committed and the "in-flight" (= newest) shard, then
    // resume — the store must converge to the original bytes with the
    // untouched shards never rewritten.
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    TempDir dir("overlap_resume");
    DatasetConfig cfg;
    cfg.samples = 300;
    cfg.problemCount = 2;
    cfg.shardSize = 64;
    cfg.streamDir = dir.path;
    cfg.overlapStreamWrites = true;

    StreamedDataset full = generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    const size_t lastShard = full.shardCount - 1;
    std::vector<std::string> before;
    for (size_t s = 0; s < full.shardCount; ++s)
        before.push_back(slurpFile(shardPath(dir.path, s)));

    fs::remove(manifestPath(dir.path));
    fs::remove(shardPath(dir.path, 1));
    fs::remove(shardPath(dir.path, lastShard)); // the mid-commit victim
    auto shard0Time = fs::last_write_time(shardPath(dir.path, 0));

    StreamedDataset resumed = generateDatasetStreamed(arch, conv1dAlgo(), cfg);
    EXPECT_FALSE(resumed.reused);
    EXPECT_EQ(fs::last_write_time(shardPath(dir.path, 0)), shard0Time);
    for (size_t s = 0; s < full.shardCount; ++s)
        EXPECT_EQ(slurpFile(shardPath(dir.path, s)), before[s])
            << "shard " << s;
    EXPECT_EQ(resumed.inputNorm.mean(0), full.inputNorm.mean(0));
    EXPECT_EQ(resumed.outputNorm.std(0), full.outputNorm.std(0));
}
