/**
 * @file
 * Figure 7c: sensitivity to training-set size.
 *
 * Trains surrogates on a geometric sweep of dataset sizes (the paper
 * sweeps 1M/2M/5M/10M; we sweep a scaled-down ladder, overridable via
 * MM_SIZES) and compares downstream Phase-2 search quality. The
 * paper's finding to reproduce: quality saturates beyond a moderate
 * dataset size, and even the smallest set is not catastrophic.
 *
 * Streamed mode: set MM_STREAM_DIR to run every Phase 1 out-of-core
 * (one shard subdirectory per size). This is the path that reaches the
 * paper's 1M–10M sizes on a laptop: peak RSS stays O(shard) instead of
 * O(samples) — e.g. `MM_SIZES=1000000 MM_STREAM_DIR=/tmp/mm_stream
 * MM_SHUFFLE_WINDOW=262144 ./fig7c_dataset_size` labels and trains on
 * 1M samples that the in-RAM path would have to materialize as two
 * dense matrices (plus split copies) in memory. The peak_rss_mb_cum
 * column makes the difference measurable (run one size per invocation
 * for exact attribution — the OS metric is a process-lifetime
 * high-water mark); the dataset bytes are reported so the two can be
 * compared directly.
 */
#include <cmath>
#include <filesystem>
#include <iostream>
#include <limits>

#include "bench/bench_util.hpp"
#include "common/clock.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    banner("Figure 7c: search quality vs surrogate training-set size",
           strCat("Fig. 7c + Sec. 5.5; runs=", env.runs,
                  env.streamDir.empty() ? "" : "; streamed Phase 1"));

    std::vector<size_t> sizes =
        envSizeList("MM_SIZES", {3000, 10000, 30000, 60000});

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem target =
        cnnProblem("Inception_Conv_2", 32, 192, 192, 56, 56, 3, 3);
    MapSpace space(arch, target);
    CostModel model(space);

    // ru_maxrss is a process-lifetime high-water mark: it never goes
    // back down, so per-size attribution is only exact for the first
    // (or a single) size — hence the _cum suffix. RSS comparisons
    // between in-RAM and streamed mode should use one size per run.
    //
    // Wall-clock columns: gen_s is labeling + shard I/O of the store
    // actually trained on (overlapped by the double-buffered writer
    // unless MM_STREAM_OVERLAP=0), train_s the epochs. In streamed
    // mode the bench additionally regenerates the dataset in both
    // writer modes (min over MM_GEN_REPEATS repetitions each;
    // MM_GEN_COMPARE=0 skips) so the overlap win is measured in the
    // same run it ships in: gen_ovl_s vs gen_ser_s.
    Table table({"train_samples", "dataset_mb", "final_test_loss",
                 "search_normEDP", "gen_s", "gen_ovl_s", "gen_ser_s",
                 "train_s", "peak_rss_mb_cum"});
    auto budget = SearchBudget::bySteps(env.iters);
    const bool genCompare = envInt("MM_GEN_COMPARE", 1) != 0;
    const size_t prefetch = envSize("MM_PREFETCH_SHARDS", 0);
    JsonArray points;

    for (size_t samples : sizes) {
        Phase1Config cfg;
        cfg.resolve();
        cfg.data.samples = samples;
        cfg.data.shardSize = envSize("MM_SHARD_ROWS", cfg.data.shardSize);
        cfg.train.shuffleWindow = envSize("MM_SHUFFLE_WINDOW", 0);
        cfg.data.overlapStreamWrites = envInt("MM_STREAM_OVERLAP", 1) != 0;
        if (!env.streamDir.empty())
            cfg.data.streamDir = strCat(env.streamDir, "/size-", samples);
        cfg.threads = env.trainThreads;

        Phase1Result result = trainSurrogate(arch, cnnLayerAlgo(), cfg);

        // Overlapped-vs-serialized generation comparison (streamed
        // mode only): both modes regenerate the same dataset into a
        // fresh scratch directory with the same labeling lanes
        // (mirroring trainSurrogate's pool sizing), alternating and
        // taking the min over MM_GEN_REPEATS repetitions — min-of-K is
        // the standard way to separate the systematic write-latency
        // cost from labeling jitter. Skipped when the training store
        // was reused (nothing was generated) and for single-shard
        // stores (no later shard to overlap the one commit with).
        // shardSize only has meaning (and is only validated) on the
        // streamed path, so divide by it behind the same guard.
        double genOvlSec = std::numeric_limits<double>::quiet_NaN();
        double genSerialSec = std::numeric_limits<double>::quiet_NaN();
        if (!cfg.data.streamDir.empty() && genCompare
            && !result.datasetReused
            && (samples + cfg.data.shardSize - 1) / cfg.data.shardSize
                   > 1) {
            const int reps = int(envInt("MM_GEN_REPEATS", 1));
            const std::string scratch =
                strCat(env.streamDir, "/size-", samples, "-scratch");
            for (int k = 0; k < reps; ++k) {
                for (bool overlap : {true, false}) {
                    Phase1Config g = cfg;
                    g.data.overlapStreamWrites = overlap;
                    g.data.streamDir = scratch;
                    std::filesystem::remove_all(scratch);
                    ParallelContext p(g.threads <= 0 ? 0
                                                     : size_t(g.threads));
                    WallTimer t;
                    generateDatasetStreamed(arch, cnnLayerAlgo(), g.data,
                                            &p);
                    double sec = t.elapsedSec();
                    double &best = overlap ? genOvlSec : genSerialSec;
                    if (!std::isfinite(best) || sec < best)
                        best = sec;
                }
            }
            std::filesystem::remove_all(scratch);
        }
        std::cerr << "[fig7c] trained on " << samples << " samples ("
                  << (cfg.data.streamDir.empty() ? "in-RAM" : "streamed")
                  << ", gen " << fmtDouble(result.datasetSec, 3)
                  << " s, peak RSS " << fmtDouble(peakRssMb(), 4)
                  << " MB)" << std::endl;

        auto runs =
            runMethod("MM", model, &result.surrogate, budget, env, 11);
        // Bytes the in-RAM path must hold for (X, Y) alone, before the
        // split copies double it.
        double datasetMb =
            double(samples)
            * double(result.surrogate.featureCount()
                     + result.surrogate.outputCount())
            * sizeof(float) / (1024.0 * 1024.0);
        double rssMb = peakRssMb();
        auto col = [](double v) {
            return std::isfinite(v) ? fmtDouble(v, 4) : std::string("-");
        };
        table.addRow({strCat(samples), fmtDouble(datasetMb, 4),
                      fmtDouble(result.history.back().testLoss, 5),
                      fmtDouble(geomeanFinal(runs), 5),
                      fmtDouble(result.datasetSec, 4), col(genOvlSec),
                      col(genSerialSec), fmtDouble(result.trainSec, 4),
                      fmtDouble(rssMb, 4)});
        JsonObject point;
        point.set("train_samples", int64_t(samples))
            .set("dataset_mb", datasetMb)
            .set("streamed", env.streamDir.empty() ? 0 : 1)
            .set("final_test_loss", result.history.back().testLoss)
            .set("search_normEDP", geomeanFinal(runs))
            .set("gen_wall_s", result.datasetSec)
            .set("gen_overlap_min_s", genOvlSec)
            .set("gen_serial_min_s", genSerialSec)
            .set("train_wall_s", result.trainSec)
            .set("peak_rss_mb_cum", rssMb);
        points.add(point);
    }
    table.print(std::cout);
    std::cout << "\nPaper finding (Fig. 7c): beyond a moderate dataset "
                 "size, search quality\nsaturates; small datasets degrade "
                 "gracefully rather than catastrophically.\n";

    JsonObject out = benchJsonHeader("fig7c", env);
    out.set("stream_dir", env.streamDir)
        .set("stream_overlap",
             int64_t(envInt("MM_STREAM_OVERLAP", 1) != 0 ? 1 : 0))
        .set("prefetch_shards", int64_t(prefetch))
        .set("shard_cache", int64_t(envSize("MM_SHARD_CACHE", 8)));
    out.setRaw("points", points.str());
    writeBenchJson("fig7c", out);
    return 0;
}
