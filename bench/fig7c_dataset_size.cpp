/**
 * @file
 * Figure 7c: sensitivity to training-set size.
 *
 * Trains surrogates on a geometric sweep of dataset sizes (the paper
 * sweeps 1M/2M/5M/10M; we sweep a scaled-down ladder, overridable via
 * MM_SIZES) and compares downstream Phase-2 search quality. The
 * paper's finding to reproduce: quality saturates beyond a moderate
 * dataset size, and even the smallest set is not catastrophic.
 */
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    banner("Figure 7c: search quality vs surrogate training-set size",
           strCat("Fig. 7c + Sec. 5.5; runs=", env.runs));

    std::vector<size_t> sizes;
    {
        std::stringstream ss(envStr("MM_SIZES", "3000,10000,30000,60000"));
        std::string item;
        while (std::getline(ss, item, ','))
            sizes.push_back(size_t(std::stoll(item)));
    }

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem target =
        cnnProblem("Inception_Conv_2", 32, 192, 192, 56, 56, 3, 3);
    MapSpace space(arch, target);
    CostModel model(space);

    Table table({"train_samples", "final_test_loss", "search_normEDP",
                 "train_s"});
    auto budget = SearchBudget::bySteps(env.iters);

    for (size_t samples : sizes) {
        Phase1Config cfg;
        cfg.resolve();
        cfg.data.samples = samples;
        Phase1Result result = trainSurrogate(arch, cnnLayerAlgo(), cfg);
        std::cerr << "[fig7c] trained on " << samples << " samples"
                  << std::endl;

        auto runs =
            runMethod("MM", model, &result.surrogate, budget, env, 11);
        table.addRow({strCat(samples),
                      fmtDouble(result.history.back().testLoss, 5),
                      fmtDouble(geomeanFinal(runs), 5),
                      fmtDouble(result.trainSec, 4)});
    }
    table.print(std::cout);
    std::cout << "\nPaper finding (Fig. 7c): beyond a moderate dataset "
                 "size, search quality\nsaturates; small datasets degrade "
                 "gracefully rather than catastrophically.\n";
    return 0;
}
