/**
 * @file
 * Figure 7c: sensitivity to training-set size.
 *
 * Trains surrogates on a geometric sweep of dataset sizes (the paper
 * sweeps 1M/2M/5M/10M; we sweep a scaled-down ladder, overridable via
 * MM_SIZES) and compares downstream Phase-2 search quality. The
 * paper's finding to reproduce: quality saturates beyond a moderate
 * dataset size, and even the smallest set is not catastrophic.
 *
 * Streamed mode: set MM_STREAM_DIR to run every Phase 1 out-of-core
 * (one shard subdirectory per size). This is the path that reaches the
 * paper's 1M–10M sizes on a laptop: peak RSS stays O(shard) instead of
 * O(samples) — e.g. `MM_SIZES=1000000 MM_STREAM_DIR=/tmp/mm_stream
 * MM_SHUFFLE_WINDOW=262144 ./fig7c_dataset_size` labels and trains on
 * 1M samples that the in-RAM path would have to materialize as two
 * dense matrices (plus split copies) in memory. The peak_rss_mb_cum
 * column makes the difference measurable (run one size per invocation
 * for exact attribution — the OS metric is a process-lifetime
 * high-water mark); the dataset bytes are reported so the two can be
 * compared directly.
 */
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    banner("Figure 7c: search quality vs surrogate training-set size",
           strCat("Fig. 7c + Sec. 5.5; runs=", env.runs,
                  env.streamDir.empty() ? "" : "; streamed Phase 1"));

    std::vector<size_t> sizes;
    {
        std::stringstream ss(envStr("MM_SIZES", "3000,10000,30000,60000"));
        std::string item;
        while (std::getline(ss, item, ','))
            sizes.push_back(size_t(std::stoll(item)));
    }

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem target =
        cnnProblem("Inception_Conv_2", 32, 192, 192, 56, 56, 3, 3);
    MapSpace space(arch, target);
    CostModel model(space);

    // ru_maxrss is a process-lifetime high-water mark: it never goes
    // back down, so per-size attribution is only exact for the first
    // (or a single) size — hence the _cum suffix. RSS comparisons
    // between in-RAM and streamed mode should use one size per run.
    Table table({"train_samples", "dataset_mb", "final_test_loss",
                 "search_normEDP", "train_s", "peak_rss_mb_cum"});
    auto budget = SearchBudget::bySteps(env.iters);
    JsonArray points;

    for (size_t samples : sizes) {
        Phase1Config cfg;
        cfg.resolve();
        cfg.data.samples = samples;
        cfg.data.shardSize =
            size_t(envInt("MM_SHARD_ROWS", int64_t(cfg.data.shardSize)));
        cfg.train.shuffleWindow = size_t(envInt("MM_SHUFFLE_WINDOW", 0));
        if (!env.streamDir.empty())
            cfg.data.streamDir = strCat(env.streamDir, "/size-", samples);
        cfg.threads = env.trainThreads;
        Phase1Result result = trainSurrogate(arch, cnnLayerAlgo(), cfg);
        std::cerr << "[fig7c] trained on " << samples << " samples ("
                  << (cfg.data.streamDir.empty() ? "in-RAM" : "streamed")
                  << ", peak RSS " << fmtDouble(peakRssMb(), 4) << " MB)"
                  << std::endl;

        auto runs =
            runMethod("MM", model, &result.surrogate, budget, env, 11);
        // Bytes the in-RAM path must hold for (X, Y) alone, before the
        // split copies double it.
        double datasetMb =
            double(samples)
            * double(result.surrogate.featureCount()
                     + result.surrogate.outputCount())
            * sizeof(float) / (1024.0 * 1024.0);
        double rssMb = peakRssMb();
        table.addRow({strCat(samples), fmtDouble(datasetMb, 4),
                      fmtDouble(result.history.back().testLoss, 5),
                      fmtDouble(geomeanFinal(runs), 5),
                      fmtDouble(result.trainSec, 4),
                      fmtDouble(rssMb, 4)});
        JsonObject point;
        point.set("train_samples", int64_t(samples))
            .set("dataset_mb", datasetMb)
            .set("streamed", env.streamDir.empty() ? 0 : 1)
            .set("final_test_loss", result.history.back().testLoss)
            .set("search_normEDP", geomeanFinal(runs))
            .set("dataset_s", result.datasetSec)
            .set("train_s", result.trainSec)
            .set("peak_rss_mb_cum", rssMb);
        points.add(point);
    }
    table.print(std::cout);
    std::cout << "\nPaper finding (Fig. 7c): beyond a moderate dataset "
                 "size, search quality\nsaturates; small datasets degrade "
                 "gracefully rather than catastrophically.\n";

    JsonObject out = benchJsonHeader("fig7c", env);
    out.set("stream_dir", env.streamDir);
    out.setRaw("points", points.str());
    writeBenchJson("fig7c", out);
    return 0;
}
