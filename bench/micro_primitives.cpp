/**
 * @file
 * Microbenchmarks of the primitives underlying every experiment: cost-
 * model evaluation, map-space sampling/projection, codec round trips,
 * surrogate forward/backward steps and the GEMM kernel. These are the
 * real-time costs behind the virtual-time model of Figure 6 (our
 * analytical model evaluates in microseconds — the reason raw wall
 * clock cannot reproduce the paper's iso-time setup; see DESIGN.md).
 */
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "common/thread_pool.hpp"
#include "mapping/codec.hpp"
#include "mapping/moves.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace mm;

struct Fixture
{
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem problem =
        cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3);
    MapSpace space{arch, problem};
    CostModel model{space};
    MappingCodec codec{space};
    Rng rng{17};
    Mapping mapping = space.randomValid(rng);
};

Fixture &
fixture()
{
    static Fixture fx;
    return fx;
}

void
BM_CostModelEvaluate(benchmark::State &state)
{
    auto &fx = fixture();
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.model.edp(fx.mapping));
}
BENCHMARK(BM_CostModelEvaluate);

void
BM_RandomValidMapping(benchmark::State &state)
{
    auto &fx = fixture();
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.space.randomValid(fx.rng));
}
BENCHMARK(BM_RandomValidMapping);

void
BM_ProjectCorruptMapping(benchmark::State &state)
{
    auto &fx = fixture();
    Mapping corrupt = fx.mapping;
    corrupt.tiling[size_t(MemLevel::L1)][2] = 4096;
    corrupt.spatial[1] = 300;
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.space.project(corrupt));
}
BENCHMARK(BM_ProjectCorruptMapping);

void
BM_CodecRoundTrip(benchmark::State &state)
{
    auto &fx = fixture();
    for (auto _ : state) {
        auto f = fx.codec.encode(fx.mapping);
        benchmark::DoNotOptimize(fx.codec.decode(f));
    }
}
BENCHMARK(BM_CodecRoundTrip);

void
BM_NeighborMove(benchmark::State &state)
{
    auto &fx = fixture();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            randomNeighbor(fx.space, fx.mapping, fx.rng));
}
BENCHMARK(BM_NeighborMove);

void
BM_SurrogateGradientStep(benchmark::State &state)
{
    // One Phase-2 step: forward + backward through the fast-preset-
    // shaped surrogate (untrained weights; identical FLOPs).
    auto &fx = fixture();
    Rng rng(3);
    Phase1Config cfg;
    cfg.resolve();
    Mlp net(fx.codec.featureCount(),
            surrogateTopology(cfg.hidden, CostResult::metaStatCount(3)),
            rng);
    Matrix x(1, fx.codec.featureCount());
    Matrix dOut(1, CostResult::metaStatCount(3));
    dOut.fill(0.1f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.forward(x));
        benchmark::DoNotOptimize(net.backward(dOut));
    }
}
BENCHMARK(BM_SurrogateGradientStep);

void
BM_Gemm128(benchmark::State &state)
{
    Rng rng(5);
    Matrix a(128, 128), b(128, 128), c(128, 128);
    for (size_t i = 0; i < a.size(); ++i) {
        a.data()[i] = float(rng.uniformReal(-1, 1));
        b.data()[i] = float(rng.uniformReal(-1, 1));
    }
    for (auto _ : state)
        gemm(false, false, 1.0f, a, b, 0.0f, c);
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 * 128 * 128
                            * 128);
}
BENCHMARK(BM_Gemm128);

void
BM_Gemm128Naive(benchmark::State &state)
{
    Rng rng(5);
    Matrix a(128, 128), b(128, 128), c(128, 128);
    for (size_t i = 0; i < a.size(); ++i) {
        a.data()[i] = float(rng.uniformReal(-1, 1));
        b.data()[i] = float(rng.uniformReal(-1, 1));
    }
    for (auto _ : state)
        gemmNaive(false, false, 1.0f, a, b, 0.0f, c);
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 * 128 * 128
                            * 128);
}
BENCHMARK(BM_Gemm128Naive);

/** The Phase-1 paper-preset hidden-layer shape: 128 x 2048 x 2048. */
void
BM_GemmMlpShaped(benchmark::State &state)
{
    Rng rng(6);
    Matrix a(128, 2048), b(2048, 2048), c(128, 2048);
    for (size_t i = 0; i < a.size(); ++i)
        a.data()[i] = float(rng.uniformReal(-1, 1));
    for (size_t i = 0; i < b.size(); ++i)
        b.data()[i] = float(rng.uniformReal(-1, 1));
    for (auto _ : state)
        gemm(false, false, 1.0f, a, b, 0.0f, c);
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 * 128 * 2048
                            * 2048);
}
BENCHMARK(BM_GemmMlpShaped);

void
BM_GemmMlpShapedNaive(benchmark::State &state)
{
    Rng rng(6);
    Matrix a(128, 2048), b(2048, 2048), c(128, 2048);
    for (size_t i = 0; i < a.size(); ++i)
        a.data()[i] = float(rng.uniformReal(-1, 1));
    for (size_t i = 0; i < b.size(); ++i)
        b.data()[i] = float(rng.uniformReal(-1, 1));
    for (auto _ : state)
        gemmNaive(false, false, 1.0f, a, b, 0.0f, c);
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 * 128 * 2048
                            * 2048);
}
BENCHMARK(BM_GemmMlpShapedNaive);

void
BM_GemmMlpShapedThreaded(benchmark::State &state)
{
    Rng rng(6);
    Matrix a(128, 2048), b(2048, 2048), c(128, 2048);
    for (size_t i = 0; i < a.size(); ++i)
        a.data()[i] = float(rng.uniformReal(-1, 1));
    for (size_t i = 0; i < b.size(); ++i)
        b.data()[i] = float(rng.uniformReal(-1, 1));
    ThreadPool pool(0); // hardware concurrency
    for (auto _ : state)
        gemm(false, false, 1.0f, a, b, 0.0f, c, &pool);
    state.SetItemsProcessed(int64_t(state.iterations()) * 2 * 128 * 2048
                            * 2048);
}
BENCHMARK(BM_GemmMlpShapedThreaded);

void
BM_LowerBound(benchmark::State &state)
{
    auto &fx = fixture();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            computeLowerBound(fx.arch, fx.problem));
}
BENCHMARK(BM_LowerBound);

} // namespace

BENCHMARK_MAIN();
