/**
 * @file
 * GEMM backend throughput: blocked+packed kernel vs the scalar baseline.
 *
 * Measures the MLP-shaped sizes that dominate Phase-1 training and the
 * batched Phase-2 driver (the 128-row batch against the fast- and
 * paper-preset weight shapes), verifies every kernel against
 * gemmReference, and writes BENCH_gemm.json so the perf trajectory is
 * tracked from this PR on.
 *
 * Knobs: MM_GEMM_SECS (target seconds per measurement, default 0.25),
 * MM_THREADS (lanes for the threaded rows, 0 = hardware concurrency).
 */
#include <iostream>
#include <limits>

#include "bench/bench_util.hpp"
#include "common/clock.hpp"
#include "common/thread_pool.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace mm;
using namespace mm::bench;

Matrix
randomMatrix(size_t rows, size_t cols, Rng &rng)
{
    Matrix m(rows, cols);
    for (size_t i = 0; i < m.size(); ++i)
        m.data()[i] = float(rng.uniformReal(-1.0, 1.0));
    return m;
}

struct Shape
{
    const char *name;
    size_t m, k, n;
};

using GemmFn = std::function<void(const Matrix &, const Matrix &, Matrix &)>;

/** Median-of-3 wall seconds per call, each sample >= targetSecs long. */
double
timeGemm(const GemmFn &fn, const Matrix &a, const Matrix &b, Matrix &c,
         double targetSecs)
{
    // Warm up and estimate a single-call cost.
    WallTimer probe;
    fn(a, b, c);
    double once = std::max(probe.elapsedSec(), 1e-7);
    const int reps = std::max(1, int(targetSecs / once));
    double best = std::numeric_limits<double>::infinity();
    for (int sample = 0; sample < 3; ++sample) {
        WallTimer timer;
        for (int r = 0; r < reps; ++r)
            fn(a, b, c);
        best = std::min(best, timer.elapsedSec() / double(reps));
    }
    return best;
}

} // namespace

int
main()
{
    BenchEnv env;
    banner("GEMM backend: blocked+packed+threaded vs scalar baseline",
           "perf infrastructure (ISSUE 2); MLP-shaped sizes");

    const double targetSecs = envDouble("MM_GEMM_SECS", 0.25);
    size_t lanes = env.threads <= 0 ? std::thread::hardware_concurrency()
                                    : size_t(env.threads);
    if (lanes == 0)
        lanes = 1;
    ThreadPool pool(lanes);

    const std::vector<Shape> shapes = {
        {"batch128_fast_hidden", 128, 128, 128},
        {"batch128_wide", 128, 512, 512},
        {"batch128_paper_hidden", 128, 2048, 2048},
    };

    Table table({"shape", "kernel", "threads", "ms/call", "gflops",
                 "speedup_vs_naive"});
    JsonArray series;
    Rng rng(42);
    for (const Shape &s : shapes) {
        Matrix a = randomMatrix(s.m, s.k, rng);
        Matrix b = randomMatrix(s.k, s.n, rng);
        Matrix c(s.m, s.n);
        const double flops = 2.0 * double(s.m) * double(s.k) * double(s.n);

        // Correctness gate before timing anything.
        Matrix ref(s.m, s.n);
        gemmReference(false, false, 1.0f, a, b, 0.0f, ref);
        gemm(false, false, 1.0f, a, b, 0.0f, c, &pool);
        double err = maxAbsDiff(c, ref);
        MM_ASSERT(err < 1e-2 * double(s.k),
                  strCat("blocked gemm mismatch on ", s.name));

        struct Variant
        {
            const char *kernel;
            int threads;
            GemmFn fn;
        };
        std::vector<Variant> variants = {
            {"naive", 1,
             [](const Matrix &a_, const Matrix &b_, Matrix &c_) {
                 gemmNaive(false, false, 1.0f, a_, b_, 0.0f, c_);
             }},
            {"blocked", 1,
             [](const Matrix &a_, const Matrix &b_, Matrix &c_) {
                 gemm(false, false, 1.0f, a_, b_, 0.0f, c_);
             }},
        };
        if (lanes > 1)
            variants.push_back(
                {"blocked", int(lanes),
                 [&pool](const Matrix &a_, const Matrix &b_, Matrix &c_) {
                     gemm(false, false, 1.0f, a_, b_, 0.0f, c_, &pool);
                 }});

        double naiveSec = 0.0;
        for (const Variant &v : variants) {
            double sec = timeGemm(v.fn, a, b, c, targetSecs);
            if (std::string(v.kernel) == "naive")
                naiveSec = sec;
            double speedup = naiveSec > 0.0 ? naiveSec / sec : 1.0;
            table.addRow({s.name, v.kernel, strCat(v.threads),
                          fmtDouble(sec * 1e3, 4),
                          fmtDouble(flops / sec * 1e-9, 3),
                          fmtDouble(speedup, 3)});
            JsonObject point;
            point.set("shape", s.name)
                .set("m", int64_t(s.m))
                .set("k", int64_t(s.k))
                .set("n", int64_t(s.n))
                .set("kernel", v.kernel)
                .set("threads", v.threads)
                .set("sec_per_call", sec)
                .set("gflops", flops / sec * 1e-9)
                .set("speedup_vs_naive", speedup);
            series.add(point);
            std::cerr << "[gemm] " << s.name << " " << v.kernel << " t="
                      << v.threads << " " << fmtDouble(flops / sec * 1e-9, 3)
                      << " GFLOP/s" << std::endl;
        }
    }
    table.print(std::cout);

    JsonObject json = benchJsonHeader("gemm", env);
    json.set("lanes", int64_t(lanes)).setRaw("series", series.str());
    writeBenchJson("gemm", json);
    return 0;
}
