/**
 * @file
 * Figure 7b: choosing the surrogate's loss function.
 *
 * Trains three surrogates identical except for the training loss
 * (Huber / MSE / MAE) and compares (a) held-out regression quality and
 * (b) downstream Phase-2 search quality on a CNN problem. The paper's
 * finding to reproduce: Huber is the best of the three — MSE is
 * destabilized by outliers, MAE under-penalizes small errors.
 */
#include <iostream>

#include "bench/bench_util.hpp"
#include "mapping/codec.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    banner("Figure 7b: surrogate loss-function comparison",
           strCat("Fig. 7b + Sec. 5.5; runs=", env.runs));

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem target =
        cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3);
    MapSpace space(arch, target);
    CostModel model(space);
    MappingCodec codec(space);

    Table table({"loss", "final_test_loss", "heldout_logEDP_MSE",
                 "search_normEDP"});
    auto budget = SearchBudget::bySteps(env.iters);

    for (const std::string lossName : {"huber", "mse", "mae"}) {
        Phase1Config cfg;
        cfg.resolve();
        cfg.data.samples =
            size_t(envInt("MM_TRAIN_SAMPLES", 20000));
        cfg.train.epochs = int(envInt("MM_EPOCHS", 16));
        cfg.train.loss = lossFromName(lossName);
        Phase1Result result = trainSurrogate(arch, cnnLayerAlgo(), cfg);
        std::cerr << "[fig7b] trained with " << lossName << std::endl;

        // Held-out fidelity against ground-truth log EDP.
        Rng rng(31);
        double mse = 0.0;
        const int n = 400;
        for (int i = 0; i < n; ++i) {
            Mapping m = space.randomValid(rng);
            auto z = result.surrogate.normalizeInput(codec.encode(m));
            double err = std::log(result.surrogate.predictNormEdp(z))
                         - std::log(model.normalizedEdp(m));
            mse += err * err / n;
        }

        // Downstream search quality.
        auto runs =
            runMethod("MM", model, &result.surrogate, budget, env, 7);

        table.addRow(
            {lossName,
             fmtDouble(result.history.back().testLoss, 5),
             fmtDouble(mse, 5), fmtDouble(geomeanFinal(runs), 5)});
    }
    table.print(std::cout);
    std::cout << "\nPaper finding (Fig. 7b): Huber trains the most useful "
                 "surrogate; MSE chases\noutliers, MAE under-penalizes "
                 "small errors.\n";
    return 0;
}
