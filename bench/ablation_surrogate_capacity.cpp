/**
 * @file
 * Extension study: are simpler differentiable surrogates sufficient?
 *
 * Section 4.1 chooses an MLP surrogate and explicitly leaves "whether
 * simpler, differentiable models are sufficient" as future work. This
 * bench answers it for our setup: a purely linear model, a single-
 * hidden-layer net and the default MLP are trained on identical data
 * and compared on held-out fidelity and downstream Phase-2 search
 * quality. Also evaluates the elite-biased training-sampling extension
 * (the paper's "improved sampling methods" future work, Section 4.1.1).
 */
#include <iostream>

#include "bench/bench_util.hpp"
#include "mapping/codec.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    banner("Extension: surrogate capacity and training-set sampling",
           strCat("Sec. 4.1 future-work items; runs=", env.runs));

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem target =
        cnnProblem("ResNet_Conv_3", 16, 128, 128, 28, 28, 3, 3);
    MapSpace space(arch, target);
    CostModel model(space);
    MappingCodec codec(space);
    auto budget = SearchBudget::bySteps(env.iters);

    Table table({"surrogate", "params", "heldout_logEDP_MSE",
                 "search_normEDP", "train_s"});

    auto evaluate = [&](const std::string &label, Phase1Config cfg) {
        cfg.data.samples = size_t(envInt("MM_TRAIN_SAMPLES", 20000));
        cfg.train.epochs = int(envInt("MM_EPOCHS", 16));
        Phase1Result result = trainSurrogate(arch, cnnLayerAlgo(), cfg);
        std::cerr << "[ablation] trained " << label << std::endl;

        Rng rng(23);
        double mse = 0.0;
        const int n = 400;
        for (int i = 0; i < n; ++i) {
            Mapping m = space.randomValid(rng);
            auto z = result.surrogate.normalizeInput(codec.encode(m));
            double err = std::log(result.surrogate.predictNormEdp(z))
                         - std::log(model.normalizedEdp(m));
            mse += err * err / n;
        }
        auto runs =
            runMethod("MM", model, &result.surrogate, budget, env, 29);
        table.addRow({label, strCat(result.surrogate.net().paramCount()),
                      fmtDouble(mse, 5),
                      fmtDouble(geomeanFinal(runs), 5),
                      fmtDouble(result.trainSec, 4)});
    };

    {
        Phase1Config cfg;
        cfg.linear = true;
        cfg.resolve();
        evaluate("linear (no hidden layers)", cfg);
    }
    {
        Phase1Config cfg;
        cfg.hidden = {64};
        cfg.resolve();
        evaluate("shallow MLP [64]", cfg);
    }
    {
        Phase1Config cfg;
        cfg.resolve();
        evaluate("default MLP [64,128,128,64]", cfg);
    }
    {
        Phase1Config cfg;
        cfg.resolve();
        cfg.data.eliteFraction = 0.25;
        evaluate("default MLP + 25% elite sampling", cfg);
    }
    table.print(std::cout);
    std::cout << "\nFinding: gradients from a purely linear surrogate "
                 "rank mappings far worse;\ndepth buys the fidelity "
                 "Phase 2 needs, supporting the paper's MLP choice.\n";
    return 0;
}
