/**
 * @file
 * Figure 6: iso-time search-quality comparison.
 *
 * All methods run until the same *virtual* wall-clock budget, with
 * per-step latencies calibrated to the paper's measurements (an MM
 * surrogate step is 153.7x / 286.8x / 425.5x cheaper than an SA / GA /
 * RL step; MM converged in 62.5 s). See DESIGN.md "Substitutions" for
 * why virtual time replaces raw wall-clock: our analytical cost model
 * is orders of magnitude faster than the Timeloop queries the paper
 * measures. Real wall time per method is reported alongside.
 *
 * Paper headline: MM beats SA / GA / RL by 3.16x / 4.19x / 2.90x.
 */
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    banner("Figure 6: iso-time comparison (normalized EDP at virtual "
               "time; log-spaced checkpoints)",
           strCat("Fig. 6 + Sec. 5.4.2; runs=", env.runs, " horizon=",
                  fmtDouble(env.vtime, 4), " virtual s; MM-P chains=",
                  env.chains));

    // The paper's methods plus the batched multi-chain Phase-2 driver:
    // at the same virtual wall-clock, MM-P explores chains-times more
    // candidates per step (see search/parallel_driver.hpp).
    std::vector<std::string> methods = methodNames();
    methods.push_back("MM-P");

    auto cnnMapper = provisionSurrogate(cnnLayerAlgo(), env);
    auto mttMapper = provisionSurrogate(mttkrpAlgo(), env);

    std::vector<double> checkpoints;
    for (double t = 10.0; t <= env.vtime * 1.0001; t *= 3.1623)
        checkpoints.push_back(t);
    checkpoints.push_back(env.vtime);

    std::vector<std::string> cols = {"problem", "method"};
    for (double c : checkpoints)
        cols.push_back(strCat("@", fmtDouble(c, 3), "s"));
    cols.push_back("steps");
    cols.push_back("real_s");
    Table table(cols);

    std::map<std::string, std::vector<double>> finals;
    std::map<std::string, double> wallByMethod;
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    auto budget = SearchBudget::byVirtualTime(env.vtime);
    uint64_t problemSeed = 101;
    for (const Problem &p : table1All()) {
        bool isCnn = p.algo == &cnnLayerAlgo();
        Surrogate &sur =
            (isCnn ? *cnnMapper : *mttMapper).surrogate();
        MapSpace space(arch, p);
        CostModel model(space);

        for (const auto &method : methods) {
            auto runs =
                runMethod(method, model, &sur, budget, env, problemSeed);
            std::vector<std::string> row = {p.name, method};
            for (double c : checkpoints)
                row.push_back(fmtDouble(geomeanAtTime(runs, c), 5));
            double steps = 0.0, wall = 0.0;
            for (const auto &r : runs) {
                steps += double(r.steps);
                wall += r.wallSec;
            }
            row.push_back(fmtDouble(steps / double(runs.size()), 5));
            row.push_back(fmtDouble(wall / double(runs.size()), 3));
            table.addRow(row);
            finals[method].push_back(geomeanFinal(runs));
            wallByMethod[method] += wall / double(runs.size());
            std::cerr << "[fig6] " << p.name << " " << method << " -> "
                      << fmtDouble(geomeanFinal(runs), 5) << std::endl;
        }
        ++problemSeed;
    }
    table.print(std::cout);

    Table summary({"metric", "value", "paper"});
    double mm = geomean(finals["MM"]);
    summary.addRow({"MM vs SA (iso-time)",
                    fmtDouble(geomean(finals["SA"]) / mm, 4), "3.16x"});
    summary.addRow({"MM vs GA (iso-time)",
                    fmtDouble(geomean(finals["GA"]) / mm, 4), "4.19x"});
    summary.addRow({"MM vs RL (iso-time)",
                    fmtDouble(geomean(finals["RL"]) / mm, 4), "2.90x"});
    summary.addRow({"MM vs Random (iso-time)",
                    fmtDouble(geomean(finals["Random"]) / mm, 4), "-"});
    summary.addRow({strCat("MM-P", env.chains, " vs MM (iso-time)"),
                    fmtDouble(mm / geomean(finals["MM-P"]), 4), "-"});
    summary.addRow(
        {"per-step cost ratio SA/MM",
         fmtDouble(TimingModel{}.saStepSec / TimingModel{}.surrogateStepSec,
                   4),
         "153.7x"});
    summary.addRow(
        {"per-step cost ratio GA/MM",
         fmtDouble(TimingModel{}.gaStepSec / TimingModel{}.surrogateStepSec,
                   4),
         "286.8x"});
    summary.addRow(
        {"per-step cost ratio RL/MM",
         fmtDouble(TimingModel{}.rlStepSec / TimingModel{}.surrogateStepSec,
                   4),
         "425.5x"});
    std::cout << "\n";
    summary.print(std::cout);

    JsonArray perMethod;
    for (const auto &[method, vals] : finals) {
        JsonObject mo;
        mo.set("method", method)
            .set("geomean_edp", geomean(vals))
            .set("wall_sec", wallByMethod[method]);
        perMethod.add(mo);
    }
    JsonObject json = benchJsonHeader("fig6_iso_time", env);
    json.setRaw("methods", perMethod.str());
    writeBenchJson("fig6_iso_time", json);
    return 0;
}
