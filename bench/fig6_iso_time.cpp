/**
 * @file
 * Figure 6: iso-time search-quality comparison.
 *
 * All methods run until the same *virtual* wall-clock budget, with
 * per-step latencies calibrated to the paper's measurements (an MM
 * surrogate step is 153.7x / 286.8x / 425.5x cheaper than an SA / GA /
 * RL step; MM converged in 62.5 s). See DESIGN.md "Substitutions" for
 * why virtual time replaces raw wall-clock: our analytical cost model
 * is orders of magnitude faster than the Timeloop queries the paper
 * measures. Real wall time per method is reported alongside.
 *
 * Paper headline: MM beats SA / GA / RL by 3.16x / 4.19x / 2.90x.
 */
#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "bound/bb_search.hpp"

int
main(int argc, char **argv)
{
    using namespace mm;
    using namespace mm::bench;

    if (handleBenchArgs(argc, argv))
        return 0;

    BenchEnv env;
    banner("Figure 6: iso-time comparison (normalized EDP at virtual "
               "time; log-spaced checkpoints)",
           strCat("Fig. 6 + Sec. 5.4.2; runs=", env.runs, " horizon=",
                  fmtDouble(env.vtime, 4), " virtual s; MM-P chains=",
                  env.chains));

    // The paper's methods plus the batched multi-chain Phase-2 driver:
    // at the same virtual wall-clock, MM-P explores chains-times more
    // candidates per step (see search/parallel_driver.hpp).
    const std::vector<std::string> methods =
        activeMethods(env, /*includeParallel=*/true);

    auto cnnMapper = provisionSurrogate(cnnLayerAlgo(), env);
    auto mttMapper = provisionSurrogate(mttkrpAlgo(), env);

    std::vector<double> checkpoints;
    for (double t = 10.0; t <= env.vtime * 1.0001; t *= 3.1623)
        checkpoints.push_back(t);
    checkpoints.push_back(env.vtime);

    std::vector<std::string> cols = {"problem", "method"};
    for (double c : checkpoints)
        cols.push_back(strCat("@", fmtDouble(c, 3), "s"));
    cols.push_back("gap");
    cols.push_back("steps");
    cols.push_back("real_s");
    Table table(cols);

    std::map<std::string, std::vector<double>> finals;
    std::map<std::string, std::vector<double>> gaps;
    std::map<std::string, double> wallByMethod;
    // One certificate per problem, shared between the virtual-time and
    // the iso-wall-clock tables below.
    std::map<std::string, BBOutcome> certs;
    JsonArray certJson;
    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    auto budget = SearchBudget::byVirtualTime(env.vtime);
    uint64_t problemSeed = 101;
    for (const Problem &p : table1All()) {
        bool isCnn = p.algo == &cnnLayerAlgo();
        Surrogate &sur =
            (isCnn ? *cnnMapper : *mttMapper).surrogate();
        MapSpace space(arch, p);
        CostModel model(space);

        const BBOutcome cert = certifyOptimum(model, env.bbNodes);
        certs[p.name] = cert;
        std::cerr << "[fig6] " << p.name << " certified >= "
                  << fmtDouble(cert.certifiedNormEdp, 5)
                  << (cert.exact ? " (exact optimum)" : "") << std::endl;
        JsonObject co;
        co.set("problem", p.name)
            .set("certified_norm_edp", cert.certifiedNormEdp)
            .set("exact", int64_t(cert.exact))
            .set("nodes_expanded", cert.nodesExpanded);
        certJson.add(co);

        for (const auto &method : methods) {
            auto runs =
                runMethod(method, model, &sur, budget, env, problemSeed);
            std::vector<std::string> row = {p.name, method};
            for (double c : checkpoints)
                row.push_back(fmtDouble(geomeanAtTime(runs, c), 5));
            double steps = 0.0, wall = 0.0;
            for (const auto &r : runs) {
                steps += double(r.steps);
                wall += r.wallSec;
            }
            const double gap =
                geomeanFinal(runs) / cert.certifiedNormEdp;
            row.push_back(strCat(fmtDouble(gap, 4),
                                 cert.exact ? "*" : ""));
            row.push_back(fmtDouble(steps / double(runs.size()), 5));
            row.push_back(fmtDouble(wall / double(runs.size()), 3));
            table.addRow(row);
            finals[method].push_back(geomeanFinal(runs));
            gaps[method].push_back(gap);
            wallByMethod[method] += wall / double(runs.size());
            std::cerr << "[fig6] " << p.name << " " << method << " -> "
                      << fmtDouble(geomeanFinal(runs), 5) << std::endl;
        }
        ++problemSeed;
    }
    std::cout << "gap: best-found EDP over the certified lower bound "
                 "(BB, maxNodes=" << env.bbNodes
              << "); * marks a proven exact optimum.\n\n";
    table.print(std::cout);

    auto have = [&](const char *m) { return finals.count(m) > 0; };
    Table summary({"metric", "value", "paper"});
    if (have("MM")) {
        double mm = geomean(finals["MM"]);
        const std::vector<std::pair<std::string, std::string>> paper = {
            {"SA", "3.16x"}, {"GA", "4.19x"}, {"RL", "2.90x"},
            {"Random", "-"}};
        for (const auto &[other, claim] : paper)
            if (have(other.c_str()))
                summary.addRow({strCat("MM vs ", other, " (iso-time)"),
                                fmtDouble(geomean(finals[other]) / mm, 4),
                                claim});
        if (have("MM-P"))
            summary.addRow({strCat("MM-P", env.chains,
                                   " vs MM (iso-time)"),
                            fmtDouble(mm / geomean(finals["MM-P"]), 4),
                            "-"});
    }
    summary.addRow(
        {"per-step cost ratio SA/MM",
         fmtDouble(TimingModel{}.saStepSec / TimingModel{}.surrogateStepSec,
                   4),
         "153.7x"});
    summary.addRow(
        {"per-step cost ratio GA/MM",
         fmtDouble(TimingModel{}.gaStepSec / TimingModel{}.surrogateStepSec,
                   4),
         "286.8x"});
    summary.addRow(
        {"per-step cost ratio RL/MM",
         fmtDouble(TimingModel{}.rlStepSec / TimingModel{}.surrogateStepSec,
                   4),
         "425.5x"});
    std::cout << "\n";
    summary.print(std::cout);

    JsonArray perMethod;
    for (const auto &[method, vals] : finals) {
        JsonObject mo;
        mo.set("method", method)
            .set("geomean_edp", geomean(vals))
            .set("geomean_gap", geomean(gaps[method]))
            .set("wall_sec", wallByMethod[method]);
        perMethod.add(mo);
    }
    JsonObject json = benchJsonHeader("fig6_iso_time", env);
    json.set("bb_nodes", env.bbNodes);
    json.setRaw("methods", perMethod.str());
    json.setRaw("certificates", certJson.str());
    writeBenchJson("fig6_iso_time", json);

    // --- Iso-wall-clock mode: budget *real* seconds per run. Unlike
    // the virtual clock — which deliberately equalizes per-step cost to
    // the paper's measured ratios — this is where the threaded
    // backend's genuine throughput shows up: MM-P packs chains-times
    // more surrogate queries into the same second of hardware time.
    // Step counts are machine-dependent by construction.
    if (env.wallSecs > 0.0) {
        std::cout << "\n=== Iso-wall-clock mode: " <<
            fmtDouble(env.wallSecs, 4)
                  << " real seconds per run (machine-dependent)\n\n";
        auto wallBudget = SearchBudget::byWallTime(env.wallSecs);
        // Wall-budgeted repetitions must not share the CPU: concurrent
        // runs would each see a loaded machine and the step counts
        // would measure contention, not throughput. Always serial.
        BenchEnv wallEnv = env;
        wallEnv.runThreads = 1;
        Table wallTable({"problem", "method", "normEDP", "median",
                        "gap", "steps", "real_s"});
        std::map<std::string, std::vector<double>> wallFinals;
        std::map<std::string, std::vector<double>> wallGaps;
        std::map<std::string, double> wallSteps, wallSecs;
        uint64_t wallSeed = 9001;
        for (const Problem &p : table1All()) {
            bool isCnn = p.algo == &cnnLayerAlgo();
            Surrogate &sur =
                (isCnn ? *cnnMapper : *mttMapper).surrogate();
            MapSpace space(arch, p);
            CostModel model(space);
            for (const auto &method : methods) {
                auto runs = runMethod(method, model, &sur, wallBudget,
                                      wallEnv, wallSeed);
                double steps = 0.0, wall = 0.0;
                std::vector<double> bests;
                for (const auto &r : runs) {
                    steps += double(r.steps) / double(runs.size());
                    wall += r.wallSec / double(runs.size());
                    if (std::isfinite(r.bestNormEdp))
                        bests.push_back(r.bestNormEdp);
                }
                std::sort(bests.begin(), bests.end());
                double median =
                    bests.empty()
                        ? std::numeric_limits<double>::infinity()
                        : bests[bests.size() / 2];
                const BBOutcome &cert = certs[p.name];
                const double gap =
                    geomeanFinal(runs) / cert.certifiedNormEdp;
                wallTable.addRow({p.name, method,
                                  fmtDouble(geomeanFinal(runs), 5),
                                  fmtDouble(median, 5),
                                  strCat(fmtDouble(gap, 4),
                                         cert.exact ? "*" : ""),
                                  fmtDouble(steps, 5),
                                  fmtDouble(wall, 3)});
                wallFinals[method].push_back(geomeanFinal(runs));
                wallGaps[method].push_back(gap);
                wallSteps[method] += steps;
                wallSecs[method] += wall;
                std::cerr << "[fig6-wall] " << p.name << " " << method
                          << " -> " << fmtDouble(geomeanFinal(runs), 5)
                          << " (" << fmtDouble(steps, 0) << " steps)"
                          << std::endl;
            }
            ++wallSeed;
        }
        wallTable.print(std::cout);
        if (have("MM") && have("MM-P")) {
            std::cout << "\nMM-P" << env.chains
                      << " vs MM at equal real seconds: "
                      << fmtDouble(geomean(wallFinals["MM"])
                                       / geomean(wallFinals["MM-P"]),
                                   4)
                      << "x better EDP\n";
        }

        JsonArray wallPerMethod;
        for (const auto &[method, vals] : wallFinals) {
            JsonObject mo;
            mo.set("method", method)
                .set("geomean_edp", geomean(vals))
                .set("geomean_gap", geomean(wallGaps[method]))
                .set("mean_steps", wallSteps[method] / double(vals.size()))
                .set("wall_sec", wallSecs[method]);
            wallPerMethod.add(mo);
        }
        JsonObject wallJson = benchJsonHeader("fig6_wall", env);
        wallJson.set("wall_budget_sec", env.wallSecs);
        wallJson.setRaw("methods", wallPerMethod.str());
        writeBenchJson("fig6_wall", wallJson);
    }
    return 0;
}
