/**
 * @file
 * Section 4.1.3 ablation: meta-statistics vs direct-EDP output.
 *
 * The paper reports that predicting the rich meta-statistics vector and
 * deriving EDP from it yields a 32.8x lower mean-square error against
 * ground-truth EDP than a surrogate trained to emit EDP directly. This
 * bench trains both heads on identical data and compares (a) held-out
 * log-EDP MSE and (b) downstream Phase-2 search quality.
 */
#include <iostream>

#include "bench/bench_util.hpp"
#include "mapping/codec.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    banner("Ablation: meta-statistics output vs direct-EDP output",
           strCat("Sec. 4.1.3 (32.8x claim); runs=", env.runs));

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem target =
        cnnProblem("ResNet_Conv_3", 16, 128, 128, 28, 28, 3, 3);
    MapSpace space(arch, target);
    CostModel model(space);
    MappingCodec codec(space);

    Table table({"output_repr", "outputs", "heldout_logEDP_MSE",
                 "search_normEDP"});
    auto budget = SearchBudget::bySteps(env.iters);
    double mseByMode[2] = {0.0, 0.0};

    int row = 0;
    for (bool meta : {true, false}) {
        Phase1Config cfg;
        cfg.resolve();
        cfg.data.samples = size_t(envInt("MM_TRAIN_SAMPLES", 20000));
        cfg.train.epochs = int(envInt("MM_EPOCHS", 16));
        cfg.data.metaStatOutputs = meta;
        Phase1Result result = trainSurrogate(arch, cnnLayerAlgo(), cfg);
        std::cerr << "[ablation] trained "
                  << (meta ? "meta-stats" : "direct-EDP") << " head"
                  << std::endl;

        Rng rng(17);
        double mse = 0.0;
        const int n = 400;
        for (int i = 0; i < n; ++i) {
            Mapping m = space.randomValid(rng);
            auto z = result.surrogate.normalizeInput(codec.encode(m));
            double err = std::log(result.surrogate.predictNormEdp(z))
                         - std::log(model.normalizedEdp(m));
            mse += err * err / n;
        }
        mseByMode[row++] = mse;

        auto runs =
            runMethod("MM", model, &result.surrogate, budget, env, 13);
        table.addRow({meta ? "meta-stats (paper)" : "direct EDP",
                      strCat(result.surrogate.outputCount()),
                      fmtDouble(mse, 5),
                      fmtDouble(geomeanFinal(runs), 5)});
    }
    table.print(std::cout);

    Table summary({"metric", "value", "paper"});
    summary.addRow({"direct/meta EDP-MSE ratio",
                    fmtDouble(mseByMode[1] / mseByMode[0], 4),
                    "32.8x (meta better)"});
    std::cout << "\n";
    summary.print(std::cout);
    return 0;
}
