#include "bench/bench_util.hpp"

#include <cmath>
#include <limits>

#include "common/clock.hpp"

#include <iostream>

namespace mm::bench {

const std::vector<std::string> &
methodNames()
{
    static const std::vector<std::string> names = {"MM", "SA", "GA", "RL",
                                                   "Random"};
    return names;
}

MindMappingsOptions
benchOptions(const BenchEnv &env)
{
    MindMappingsOptions opts;
    opts.phase1.preset = env.paperPreset ? SurrogatePreset::Paper
                                         : SurrogatePreset::Fast;
    opts.phase1.resolve();
    opts.phase1.data.samples = size_t(
        envInt("MM_TRAIN_SAMPLES", int64_t(opts.phase1.data.samples)));
    opts.phase1.train.epochs =
        int(envInt("MM_EPOCHS", opts.phase1.train.epochs));
    opts.useCache = !SurrogateCache::disabled();
    return opts;
}

std::unique_ptr<MindMappings>
provisionSurrogate(const AlgorithmSpec &algo, const BenchEnv &env)
{
    auto mapper = std::make_unique<MindMappings>(
        AcceleratorSpec::paperDefault(), algo, benchOptions(env));
    std::cerr << "[phase1] preparing surrogate for " << algo.name
              << " (samples=" << mapper->options().phase1.data.samples
              << ", epochs=" << mapper->options().phase1.train.epochs
              << ") ..." << std::endl;
    WallTimer timer;
    bool cached = mapper->prepare();
    std::cerr << "[phase1] " << (cached ? "cache hit" : "trained") << " in "
              << fmtDouble(timer.elapsedSec(), 3) << " s" << std::endl;
    return mapper;
}

DdpgConfig
benchDdpgConfig(const BenchEnv &env)
{
    DdpgConfig cfg;
    if (env.paperPreset) {
        cfg.hiddenWidth = 300; // Appendix A
        cfg.updateEvery = 1;
    } else {
        cfg.hiddenWidth = int(envInt("MM_RL_WIDTH", 96));
        cfg.batchSize = 24;
        cfg.updateEvery = 2;
    }
    return cfg;
}

std::unique_ptr<Searcher>
makeSearcher(const std::string &name, const CostModel &model,
             Surrogate *surrogate, const BenchEnv &env)
{
    TimingModel timing = TimingModel::paperCalibrated();
    if (name == "MM") {
        MM_ASSERT(surrogate != nullptr, "MM requires a surrogate");
        return std::make_unique<MindMappingsSearcher>(
            model, *surrogate, GradientSearchConfig{}, timing);
    }
    if (name == "MM-P") {
        MM_ASSERT(surrogate != nullptr, "MM-P requires a surrogate");
        ParallelSearchConfig pcfg;
        pcfg.chains = env.chains;
        pcfg.threads = env.threads;
        return std::make_unique<ParallelGradientSearcher>(model, *surrogate,
                                                          pcfg, timing);
    }
    if (name == "SA")
        return std::make_unique<AnnealingSearcher>(model,
                                                   AnnealingConfig{},
                                                   timing);
    if (name == "GA")
        return std::make_unique<GeneticSearcher>(model, GeneticConfig{},
                                                 timing);
    if (name == "RL")
        return std::make_unique<DdpgSearcher>(model, benchDdpgConfig(env),
                                              timing);
    if (name == "Random")
        return std::make_unique<RandomSearcher>(model, timing);
    fatal("unknown search method: " + name);
}

namespace {

double
geomeanBy(const std::vector<SearchResult> &runs,
          const std::function<double(const SearchResult &)> &pick)
{
    std::vector<double> vals;
    for (const auto &r : runs) {
        double v = pick(r);
        if (std::isfinite(v))
            vals.push_back(v);
    }
    return vals.empty() ? std::numeric_limits<double>::infinity()
                        : geomean(vals);
}

} // namespace

double
geomeanAtStep(const std::vector<SearchResult> &runs, int64_t step)
{
    return geomeanBy(runs,
                     [&](const SearchResult &r) { return r.bestAtStep(step); });
}

double
geomeanAtTime(const std::vector<SearchResult> &runs, double sec)
{
    return geomeanBy(runs, [&](const SearchResult &r) {
        return r.bestAtVirtualTime(sec);
    });
}

double
geomeanFinal(const std::vector<SearchResult> &runs)
{
    return geomeanBy(runs,
                     [](const SearchResult &r) { return r.bestNormEdp; });
}

std::vector<SearchResult>
runMethod(const std::string &method, const CostModel &model,
          Surrogate *surrogate, const SearchBudget &budget,
          const BenchEnv &env, uint64_t baseSeed)
{
    std::vector<SearchResult> results;
    for (int run = 0; run < env.runs; ++run) {
        auto searcher = makeSearcher(method, model, surrogate, env);
        Rng rng(baseSeed * 1000003ULL + uint64_t(run) * 7919ULL + 1);
        results.push_back(searcher->run(budget, rng));
    }
    return results;
}

void
banner(const std::string &title, const std::string &paperRef)
{
    std::cout << "=== " << title << "\n=== reproduces: " << paperRef
              << "\n"
              << std::endl;
}

} // namespace mm::bench
