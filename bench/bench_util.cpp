#include "bench/bench_util.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>

#include <sys/resource.h>

#include "common/clock.hpp"

namespace mm::bench {

const std::vector<std::string> &
methodNames()
{
    static const std::vector<std::string> names = {"MM", "SA", "GA", "RL",
                                                   "Random"};
    return names;
}

MindMappingsOptions
benchOptions(const BenchEnv &env)
{
    MindMappingsOptions opts;
    opts.phase1.preset = env.paperPreset ? SurrogatePreset::Paper
                                         : SurrogatePreset::Fast;
    opts.phase1.resolve();
    opts.phase1.data.samples =
        envSize("MM_TRAIN_SAMPLES", opts.phase1.data.samples);
    opts.phase1.train.epochs =
        int(envInt("MM_EPOCHS", opts.phase1.train.epochs));
    opts.useCache = !SurrogateCache::disabled();
    opts.phase1.threads = int(envInt("MM_TRAIN_THREADS", 0));
    opts.phase1.data.streamDir = env.streamDir;
    opts.phase1.data.shardSize =
        envSize("MM_SHARD_ROWS", opts.phase1.data.shardSize);
    opts.phase1.data.overlapStreamWrites =
        envInt("MM_STREAM_OVERLAP", 1) != 0;
    opts.phase1.train.shuffleWindow = envSize("MM_SHUFFLE_WINDOW", 0);
    opts.phase1.data.labelBlock =
        envSize("MM_EVAL_BATCH", opts.phase1.data.labelBlock);
    return opts;
}

double
peakRssMb()
{
    struct rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes.
    return double(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    // Linux (and the BSDs) report ru_maxrss in KiB.
    return double(ru.ru_maxrss) / 1024.0;
#endif
}

std::unique_ptr<MindMappings>
provisionSurrogate(const AlgorithmSpec &algo, const BenchEnv &env)
{
    auto mapper = std::make_unique<MindMappings>(
        AcceleratorSpec::paperDefault(), algo, benchOptions(env));
    std::cerr << "[phase1] preparing surrogate for " << algo.name
              << " (samples=" << mapper->options().phase1.data.samples
              << ", epochs=" << mapper->options().phase1.train.epochs
              << ") ..." << std::endl;
    WallTimer timer;
    bool cached = mapper->prepare();
    std::cerr << "[phase1] " << (cached ? "cache hit" : "trained") << " in "
              << fmtDouble(timer.elapsedSec(), 3) << " s" << std::endl;
    return mapper;
}

DdpgConfig
benchDdpgConfig(const BenchEnv &env)
{
    DdpgConfig cfg;
    if (env.paperPreset) {
        cfg.hiddenWidth = 300; // Appendix A
        cfg.updateEvery = 1;
    } else {
        cfg.hiddenWidth = int(envInt("MM_RL_WIDTH", 96));
        cfg.batchSize = 24;
        cfg.updateEvery = 2;
    }
    return cfg;
}

std::vector<std::string>
activeMethods(const BenchEnv &env, bool includeParallel)
{
    std::vector<std::string> out;
    if (env.methods.empty()) {
        out = methodNames();
        if (includeParallel)
            out.push_back("MM-P");
        return out;
    }
    const SearcherRegistry &reg = SearcherRegistry::instance();
    for (const std::string &key : split(env.methods, ',')) {
        if (key.empty())
            continue;
        (void)reg.at(key); // fatal with the known keys when unknown
        out.push_back(key);
    }
    if (out.empty())
        fatal("MM_METHODS is set but names no methods");
    return out;
}

std::string
methodSpec(const std::string &method, const BenchEnv &env)
{
    if (method == "MM-P")
        return strCat("MM-P:chains=", env.chains, ",threads=",
                      env.threads);
    if (method == "RL") {
        DdpgConfig cfg = benchDdpgConfig(env);
        return strCat("RL:width=", cfg.hiddenWidth, ",batch=",
                      cfg.batchSize, ",updateEvery=", cfg.updateEvery);
    }
    return method;
}

bool
handleBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--list") {
            std::cout << "registered searchers (spec: KEY or "
                         "KEY:opt=v,opt=v; MM_METHODS takes keys):\n\n"
                      << SearcherRegistry::instance().describe();
            return true;
        }
    }
    return false;
}

namespace {

double
geomeanBy(const std::vector<SearchResult> &runs,
          const std::function<double(const SearchResult &)> &pick)
{
    std::vector<double> vals;
    for (const auto &r : runs) {
        double v = pick(r);
        if (std::isfinite(v))
            vals.push_back(v);
    }
    return vals.empty() ? std::numeric_limits<double>::infinity()
                        : geomean(vals);
}

} // namespace

double
geomeanAtStep(const std::vector<SearchResult> &runs, int64_t step)
{
    return geomeanBy(runs,
                     [&](const SearchResult &r) { return r.bestAtStep(step); });
}

double
geomeanAtTime(const std::vector<SearchResult> &runs, double sec)
{
    return geomeanBy(runs, [&](const SearchResult &r) {
        return r.bestAtVirtualTime(sec);
    });
}

double
geomeanFinal(const std::vector<SearchResult> &runs)
{
    return geomeanBy(runs,
                     [](const SearchResult &r) { return r.bestNormEdp; });
}

std::vector<SearchResult>
runMethod(const std::string &method, const CostModel &model,
          Surrogate *surrogate, const SearchBudget &budget,
          const BenchEnv &env, uint64_t baseSeed)
{
    SearcherBuildContext ctx{model, surrogate,
                             TimingModel::paperCalibrated()};
    MultiRunOptions opts;
    opts.runs = env.runs;
    // MM_SEED=0 preserves the historical per-problem seeds bitwise; a
    // non-zero seed shifts every repetition into a fresh stream.
    opts.baseSeed = env.seed == 0
                        ? baseSeed
                        : baseSeed + env.seed * 0x9E3779B97F4A7C15ULL;
    opts.threads = env.runThreads;
    return runMany(methodSpec(method, env), ctx, budget, opts).runs;
}

void
banner(const std::string &title, const std::string &paperRef)
{
    std::cout << "=== " << title << "\n=== reproduces: " << paperRef
              << "\n"
              << std::endl;
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char ch : s) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += ch;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream ss;
    ss << std::setprecision(12) << v;
    return ss.str();
}

} // namespace

JsonObject &
JsonObject::set(const std::string &key, const std::string &v)
{
    std::string quoted;
    quoted += '"';
    quoted += jsonEscape(v);
    quoted += '"';
    fields.emplace_back(key, std::move(quoted));
    return *this;
}

JsonObject &
JsonObject::set(const std::string &key, const char *v)
{
    return set(key, std::string(v));
}

JsonObject &
JsonObject::set(const std::string &key, double v)
{
    fields.emplace_back(key, jsonNumber(v));
    return *this;
}

JsonObject &
JsonObject::set(const std::string &key, int64_t v)
{
    fields.emplace_back(key, std::to_string(v));
    return *this;
}

JsonObject &
JsonObject::setRaw(const std::string &key, std::string rawJson)
{
    fields.emplace_back(key, std::move(rawJson));
    return *this;
}

std::string
JsonObject::str() const
{
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += '"';
        out += jsonEscape(fields[i].first);
        out += "\": ";
        out += fields[i].second;
    }
    out += '}';
    return out;
}

JsonArray &
JsonArray::add(const JsonObject &obj)
{
    items.push_back(obj.str());
    return *this;
}

JsonArray &
JsonArray::addRaw(std::string rawJson)
{
    items.push_back(std::move(rawJson));
    return *this;
}

std::string
JsonArray::str() const
{
    std::string out = "[";
    for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += ", ";
        out += items[i];
    }
    out += ']';
    return out;
}

JsonObject
benchJsonHeader(const std::string &bench, const BenchEnv &env)
{
    JsonObject obj;
    obj.set("bench", bench)
        .set("preset", env.paperPreset ? "paper" : "fast")
        .set("runs", env.runs)
        .set("iters", env.iters)
        .set("vtime", env.vtime)
        .set("wall", env.wallSecs)
        .set("seed", int64_t(env.seed))
        .set("chains", env.chains)
        .set("threads", env.threads)
        .set("train_threads", env.trainThreads)
        .set("run_threads", env.runThreads);
    return obj;
}

std::string
writeBenchJson(const std::string &name, const JsonObject &obj)
{
    std::string dir = envStr("MM_BENCH_JSON_DIR", ".");
    std::string path = dir + "/BENCH_" + name + ".json";
    std::ofstream os(path);
    if (!os) {
        std::cerr << "[bench] cannot write " << path << std::endl;
        return path;
    }
    os << obj.str() << "\n";
    std::cerr << "[bench] wrote " << path << std::endl;
    return path;
}

} // namespace mm::bench
