/**
 * @file
 * Branch-and-bound certification throughput (ISSUE 9).
 *
 * Runs certifyOptimum on a spread of problems — a map space small
 * enough to solve exactly, plus full-size CNN-Layer and MTTKRP shapes
 * where the node cap cuts the run short — and reports the node
 * expansion rate, prune rate, and time-to-certificate. Writes
 * BENCH_bound.json so the perf trajectory is tracked across PRs.
 *
 * Knobs: MM_BB_NODES (node cap, default 2000).
 */
#include <iostream>

#include "bench/bench_util.hpp"
#include "bound/bb_search.hpp"
#include "common/clock.hpp"

int
main(int argc, char **argv)
{
    using namespace mm;
    using namespace mm::bench;

    if (handleBenchArgs(argc, argv))
        return 0;

    BenchEnv env;
    banner("Bound engine: branch-and-bound certification throughput",
           strCat("ISSUE 9; nodes<=", env.bbNodes, " per problem"));

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    std::vector<Problem> problems = {
        makeProblem(conv1dAlgo(), "conv1d_tiny", {16, 4}),
        cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3),
        mttkrpProblem("MTTKRP_small", 128, 256, 512, 128),
    };

    Table table({"problem", "certNormEDP", "bestNormEDP", "exact",
                 "nodes", "pruned", "prune_rate", "leaves", "sec"});
    JsonArray perProblem;
    for (const Problem &p : problems) {
        MapSpace space(arch, p);
        CostModel model(space);

        WallTimer timer;
        const BBOutcome out = certifyOptimum(model, env.bbNodes);
        const double sec = timer.elapsedSec();

        const double visited = double(out.nodesExpanded + out.nodesPruned);
        const double pruneRate =
            visited > 0.0 ? double(out.nodesPruned) / visited : 0.0;
        table.addRow({p.name, fmtDouble(out.certifiedNormEdp, 5),
                      fmtDouble(out.bestNormEdp, 5),
                      out.exact ? "yes" : "no",
                      strCat(out.nodesExpanded), strCat(out.nodesPruned),
                      fmtDouble(pruneRate, 4),
                      strCat(out.leavesEvaluated), fmtDouble(sec, 4)});
        std::cerr << "[bound] " << p.name << " certified >= "
                  << fmtDouble(out.certifiedNormEdp, 5) << " in "
                  << fmtDouble(sec, 4) << " s"
                  << (out.exact ? " (exact optimum)" : "") << std::endl;

        JsonObject po;
        po.set("problem", p.name)
            .set("certified_norm_edp", out.certifiedNormEdp)
            .set("best_norm_edp", out.bestNormEdp)
            .set("exact", int64_t(out.exact))
            .set("nodes_expanded", out.nodesExpanded)
            .set("nodes_pruned", out.nodesPruned)
            .set("prune_rate", pruneRate)
            .set("leaves_evaluated", out.leavesEvaluated)
            .set("time_to_certificate_sec", sec);
        perProblem.add(po);
    }
    table.print(std::cout);

    JsonObject json = benchJsonHeader("bound", env);
    json.set("bb_nodes", env.bbNodes);
    json.setRaw("problems", perProblem.str());
    writeBenchJson("bound", json);
    return 0;
}
