/**
 * @file
 * Cost-model evaluation throughput: the batched descriptor pipeline
 * (CostModel::evaluateBatch / edpBatch) against the historical
 * per-call implementation (costmodel/reference_eval.hpp — full
 * isMember walk plus allocated scratch on every evaluation, exactly
 * the loop every consumer ran before the pipeline rewrite), and
 * against today's scalar evaluate (a batch of one).
 *
 * Each variant is verified bitwise against the reference before
 * anything is timed, then measured as ns/mapping over a pre-sampled
 * pool (sampling cost is excluded — this isolates evaluation). Writes
 * BENCH_costmodel.json so the perf trajectory is tracked.
 *
 * Knobs: MM_EVAL_N (pool size per shape, default 4096), MM_EVAL_SECS
 * (target seconds per measurement, default 0.2), MM_EVAL_THREADS
 * (lanes for the threaded rows, 0 = hardware concurrency, default 1).
 */
#include <cstring>
#include <iostream>
#include <limits>
#include <thread>

#include "bench/bench_util.hpp"
#include "common/clock.hpp"
#include "costmodel/reference_eval.hpp"

namespace {

using namespace mm;
using namespace mm::bench;

/** Median-free best-of-3 wall seconds per sweep over the pool. */
double
timeSweep(const std::function<void()> &fn, double targetSecs)
{
    WallTimer probe;
    fn();
    double once = std::max(probe.elapsedSec(), 1e-7);
    const int reps = std::max(1, int(targetSecs / once));
    double best = std::numeric_limits<double>::infinity();
    for (int sample = 0; sample < 3; ++sample) {
        WallTimer timer;
        for (int r = 0; r < reps; ++r)
            fn();
        best = std::min(best, timer.elapsedSec() / double(reps));
    }
    return best;
}

bool
sameBits(double a, double b)
{
    uint64_t ua, ub;
    std::memcpy(&ua, &a, sizeof a);
    std::memcpy(&ub, &b, sizeof b);
    return ua == ub;
}

} // namespace

int
main()
{
    BenchEnv env;
    banner("Cost model: batched descriptor pipeline vs scalar loop",
           "perf infrastructure (ISSUE 6); Phase-1/searcher eval path");

    const size_t n = envSize("MM_EVAL_N", 4096);
    const double targetSecs = envDouble("MM_EVAL_SECS", 0.2);
    size_t lanes = envSize("MM_EVAL_THREADS", 1);
    if (lanes == 0)
        lanes = std::max<size_t>(1, std::thread::hardware_concurrency());

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    std::vector<Problem> problems = {
        cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3),
        mttkrpProblem("MTTKRP_small", 128, 256, 512, 128),
    };

    Table table(
        {"shape", "variant", "threads", "ns/mapping", "speedup_vs_reference"});
    JsonArray series;
    ParallelContext par(lanes);

    for (const Problem &problem : problems) {
        MapSpace space(arch, problem);
        CostModel model(space);
        Rng rng(7);
        std::vector<Mapping> pool;
        pool.reserve(n);
        for (size_t i = 0; i < n; ++i)
            pool.push_back(space.randomValid(rng));
        std::span<const Mapping> maps(pool);

        // Correctness gate: the batch forms and today's scalar path
        // must all replay the historical implementation bitwise before
        // they are allowed on the scoreboard.
        std::vector<CostResult> batchRes(n);
        std::vector<double> batchEdp(n);
        model.evaluateBatch(maps, std::span<CostResult>(batchRes));
        model.edpBatch(maps, std::span<double>(batchEdp));
        for (size_t i = 0; i < n; ++i) {
            double ref = referenceEvaluate(space, pool[i]).edp();
            MM_ASSERT(sameBits(batchRes[i].edp(), ref)
                          && sameBits(batchEdp[i], ref)
                          && sameBits(model.evaluate(pool[i]).edp(), ref),
                      strCat("batch/reference mismatch on ", problem.name,
                             " at mapping ", i));
        }

        struct Variant
        {
            const char *name;
            int threads;
            std::function<void()> fn;
        };
        std::vector<CostResult> out(n);
        std::vector<double> edps(n);
        std::vector<Variant> variants = {
            {"reference_evaluate", 1,
             [&] {
                 for (const Mapping &m : pool)
                     out[&m - pool.data()] = referenceEvaluate(space, m);
             }},
            {"scalar_evaluate", 1,
             [&] {
                 for (const Mapping &m : pool)
                     out[&m - pool.data()] = model.evaluate(m);
             }},
            {"batch_evaluate", 1,
             [&] {
                 model.evaluateBatch(maps, std::span<CostResult>(out));
             }},
            {"batch_edp", 1,
             [&] { model.edpBatch(maps, std::span<double>(edps)); }},
        };
        if (lanes > 1) {
            variants.push_back({"batch_evaluate", int(lanes), [&] {
                                    model.evaluateBatch(
                                        maps, std::span<CostResult>(out),
                                        &par);
                                }});
            variants.push_back({"batch_edp", int(lanes), [&] {
                                    model.edpBatch(maps,
                                                   std::span<double>(edps),
                                                   &par);
                                }});
        }

        double refSec = 0.0;
        for (const Variant &v : variants) {
            double sec = timeSweep(v.fn, targetSecs);
            if (std::string(v.name) == "reference_evaluate")
                refSec = sec;
            double nsPerMap = sec / double(n) * 1e9;
            double speedup = refSec > 0.0 ? refSec / sec : 1.0;
            table.addRow({problem.name, v.name, strCat(v.threads),
                          fmtDouble(nsPerMap, 1), fmtDouble(speedup, 3)});
            JsonObject point;
            point.set("shape", problem.name)
                .set("variant", v.name)
                .set("threads", v.threads)
                .set("pool", int64_t(n))
                .set("ns_per_mapping", nsPerMap)
                .set("speedup_vs_reference", speedup);
            series.add(point);
            std::cerr << "[costmodel] " << problem.name << " " << v.name
                      << " t=" << v.threads << " "
                      << fmtDouble(nsPerMap, 1) << " ns/mapping"
                      << std::endl;
        }
    }
    table.print(std::cout);

    JsonObject json = benchJsonHeader("costmodel", env);
    json.set("pool", int64_t(n))
        .set("lanes", int64_t(lanes))
        .setRaw("series", series.str());
    writeBenchJson("costmodel", json);
    return 0;
}
