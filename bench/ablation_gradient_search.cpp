/**
 * @file
 * Appendix A ablation: Phase-2 gradient-search hyper-parameters.
 *
 * Using the shared CNN surrogate, sweeps the design choices Appendix A
 * fixes by grid search — the learning rate (paper: 1, no decay) and the
 * random-injection mechanism that avoids local minima (paper: every 10
 * iterations with an annealed acceptance test). Also reports the
 * injection-disabled variant, isolating how much of Mind Mappings'
 * quality comes from gradients alone.
 */
#include <iostream>

#include "bench/bench_util.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    banner("Ablation: Phase-2 learning rate and random injection",
           strCat("Appendix A (MM hyper-parameters); runs=", env.runs,
                  " iters=", env.iters));

    auto mapper = provisionSurrogate(cnnLayerAlgo(), env);
    Surrogate &sur = mapper->surrogate();

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem target =
        cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3);
    MapSpace space(arch, target);
    CostModel model(space);
    auto budget = SearchBudget::bySteps(env.iters);

    Table table({"variant", "normEDP@25%", "normEDP@final"});
    // Every variant is an option string on the registry's "MM" entry;
    // the historical per-run seeds (900 + run) are preserved through
    // the orchestrator's seed override.
    SearcherBuildContext sctx{model, &sur};
    auto sweep = [&](const std::string &label, const std::string &spec) {
        MultiRunOptions opts;
        opts.runs = env.runs;
        opts.seedFor = [](int run) { return 900 + uint64_t(run); };
        auto result = runMany(spec, sctx, budget, opts);
        table.addRow({label,
                      fmtDouble(geomeanAtStep(result.runs, env.iters / 4),
                                5),
                      fmtDouble(geomeanFinal(result.runs), 5)});
        std::cerr << "[ablation] " << label << " -> "
                  << fmtDouble(geomeanFinal(result.runs), 5) << std::endl;
    };

    for (double lr : {0.1, 0.3, 1.0, 3.0})
        sweep(strCat("lr=", lr, " (paper: 1)"), strCat("MM:lr=", lr));
    sweep("no random injection", "MM:inject=0");
    sweep("inject every 50 (paper: 10)", "MM:injectEvery=50");
    sweep("greedy acceptance (T=0)", "MM:temp=0");
    table.print(std::cout);
    return 0;
}
