/**
 * @file
 * Figure 5: iso-iteration search-quality comparison.
 *
 * All methods run for the same number of cost-function queries on every
 * Table 1 problem; the series is the best-so-far EDP normalized to the
 * algorithmic minimum, averaged (geomean) over MM_RUNS repetitions.
 * The paper's headline numbers reproduced here:
 *   - MM beats SA / GA / RL by 1.40x / 1.76x / 1.29x on average,
 *   - MM converges within ~1000 iterations,
 *   - MM lands ~5.3x above the (possibly unachievable) lower bound
 *     (Section 5.4.3 "Optimality").
 */
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    banner("Figure 5: iso-iteration comparison (normalized EDP, lower "
               "is better)",
           strCat("Fig. 5 + Sec. 5.4.1; runs=", env.runs,
                  " iters=", env.iters));

    auto cnnMapper = provisionSurrogate(cnnLayerAlgo(), env);
    auto mttMapper = provisionSurrogate(mttkrpAlgo(), env);

    const std::vector<int64_t> checkpoints = {
        env.iters / 100, env.iters / 10, env.iters / 4, env.iters / 2,
        env.iters};

    std::vector<std::string> cols = {"problem", "method"};
    for (int64_t c : checkpoints)
        cols.push_back(strCat("@", c));
    Table table(cols);

    // Per-method geomean across problems of the final quality.
    std::map<std::string, std::vector<double>> finals;

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    auto budget = SearchBudget::bySteps(env.iters);
    uint64_t problemSeed = 1;
    for (const Problem &p : table1All()) {
        bool isCnn = p.algo == &cnnLayerAlgo();
        Surrogate &sur =
            (isCnn ? *cnnMapper : *mttMapper).surrogate();
        MapSpace space(arch, p);
        CostModel model(space);

        for (const auto &method : methodNames()) {
            auto runs =
                runMethod(method, model, &sur, budget, env, problemSeed);
            std::vector<std::string> row = {p.name, method};
            for (int64_t c : checkpoints)
                row.push_back(fmtDouble(geomeanAtStep(runs, c), 5));
            table.addRow(row);
            finals[method].push_back(geomeanFinal(runs));
            std::cerr << "[fig5] " << p.name << " " << method << " -> "
                      << fmtDouble(geomeanFinal(runs), 5) << std::endl;
        }
        ++problemSeed;
    }
    table.print(std::cout);

    // Headline ratios (paper: 1.40x / 1.76x / 1.29x over SA / GA / RL).
    Table summary({"metric", "value", "paper"});
    double mm = geomean(finals["MM"]);
    summary.addRow({"MM vs SA (iso-iteration)",
                    fmtDouble(geomean(finals["SA"]) / mm, 4), "1.40x"});
    summary.addRow({"MM vs GA (iso-iteration)",
                    fmtDouble(geomean(finals["GA"]) / mm, 4), "1.76x"});
    summary.addRow({"MM vs RL (iso-iteration)",
                    fmtDouble(geomean(finals["RL"]) / mm, 4), "1.29x"});
    summary.addRow({"MM vs Random (iso-iteration)",
                    fmtDouble(geomean(finals["Random"]) / mm, 4), "-"});
    summary.addRow({"MM gap to algorithmic minimum", fmtDouble(mm, 4),
                    "5.3x"});
    std::cout << "\n";
    summary.print(std::cout);
    return 0;
}
