/**
 * @file
 * Figure 5: iso-iteration search-quality comparison.
 *
 * All methods run for the same number of cost-function queries on every
 * Table 1 problem; the series is the best-so-far EDP normalized to the
 * algorithmic minimum, averaged (geomean) over MM_RUNS repetitions.
 * The paper's headline numbers reproduced here:
 *   - MM beats SA / GA / RL by 1.40x / 1.76x / 1.29x on average,
 *   - MM converges within ~1000 iterations,
 *   - MM lands ~5.3x above the (possibly unachievable) lower bound
 *     (Section 5.4.3 "Optimality").
 */
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "bound/bb_search.hpp"

int
main(int argc, char **argv)
{
    using namespace mm;
    using namespace mm::bench;

    if (handleBenchArgs(argc, argv))
        return 0;

    BenchEnv env;
    banner("Figure 5: iso-iteration comparison (normalized EDP, lower "
               "is better)",
           strCat("Fig. 5 + Sec. 5.4.1; runs=", env.runs,
                  " iters=", env.iters));

    const std::vector<std::string> methods =
        activeMethods(env, /*includeParallel=*/false);

    auto cnnMapper = provisionSurrogate(cnnLayerAlgo(), env);
    auto mttMapper = provisionSurrogate(mttkrpAlgo(), env);

    const std::vector<int64_t> checkpoints = {
        env.iters / 100, env.iters / 10, env.iters / 4, env.iters / 2,
        env.iters};

    std::vector<std::string> cols = {"problem", "method"};
    for (int64_t c : checkpoints)
        cols.push_back(strCat("@", c));
    cols.push_back("gap");
    Table table(cols);

    // Per-method geomean across problems of the final quality and of
    // the optimality gap (best-found EDP over the certified bound).
    std::map<std::string, std::vector<double>> finals;
    std::map<std::string, std::vector<double>> gaps;
    JsonArray certJson;

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    auto budget = SearchBudget::bySteps(env.iters);
    uint64_t problemSeed = 1;
    for (const Problem &p : table1All()) {
        bool isCnn = p.algo == &cnnLayerAlgo();
        Surrogate &sur =
            (isCnn ? *cnnMapper : *mttMapper).surrogate();
        MapSpace space(arch, p);
        CostModel model(space);

        // Per-problem optimality certificate: any method's normalized
        // EDP divided by certifiedNormEdp is a *proven* gap to the best
        // achievable mapping (exact optimum when BB terminates).
        const BBOutcome cert = certifyOptimum(model, env.bbNodes);
        std::cerr << "[fig5] " << p.name << " certified >= "
                  << fmtDouble(cert.certifiedNormEdp, 5)
                  << (cert.exact ? " (exact optimum)" : "") << std::endl;
        JsonObject co;
        co.set("problem", p.name)
            .set("certified_norm_edp", cert.certifiedNormEdp)
            .set("exact", int64_t(cert.exact))
            .set("nodes_expanded", cert.nodesExpanded);
        certJson.add(co);

        for (const auto &method : methods) {
            auto runs =
                runMethod(method, model, &sur, budget, env, problemSeed);
            std::vector<std::string> row = {p.name, method};
            for (int64_t c : checkpoints)
                row.push_back(fmtDouble(geomeanAtStep(runs, c), 5));
            const double gap =
                geomeanFinal(runs) / cert.certifiedNormEdp;
            row.push_back(strCat(fmtDouble(gap, 4),
                                 cert.exact ? "*" : ""));
            table.addRow(row);
            finals[method].push_back(geomeanFinal(runs));
            gaps[method].push_back(gap);
            std::cerr << "[fig5] " << p.name << " " << method << " -> "
                      << fmtDouble(geomeanFinal(runs), 5) << std::endl;
        }
        ++problemSeed;
    }
    std::cout << "gap: best-found EDP over the certified lower bound "
                 "(BB, maxNodes=" << env.bbNodes
              << "); * marks a proven exact optimum.\n\n";
    table.print(std::cout);

    // Headline ratios (paper: 1.40x / 1.76x / 1.29x over SA / GA / RL),
    // printable only for the methods MM_METHODS left in the run.
    auto have = [&](const char *m) { return finals.count(m) > 0; };
    if (have("MM")) {
        Table summary({"metric", "value", "paper"});
        double mm = geomean(finals["MM"]);
        const std::vector<std::pair<std::string, std::string>> paper = {
            {"SA", "1.40x"}, {"GA", "1.76x"}, {"RL", "1.29x"},
            {"Random", "-"}};
        for (const auto &[other, claim] : paper)
            if (have(other.c_str()))
                summary.addRow(
                    {strCat("MM vs ", other, " (iso-iteration)"),
                     fmtDouble(geomean(finals[other]) / mm, 4), claim});
        summary.addRow({"MM gap to algorithmic minimum", fmtDouble(mm, 4),
                        "5.3x"});
        std::cout << "\n";
        summary.print(std::cout);
    }

    JsonArray perMethod;
    for (const auto &[method, vals] : finals) {
        JsonObject mo;
        mo.set("method", method)
            .set("geomean_edp", geomean(vals))
            .set("geomean_gap", geomean(gaps[method]));
        perMethod.add(mo);
    }
    JsonObject json = benchJsonHeader("fig5_iso_iteration", env);
    json.set("bb_nodes", env.bbNodes);
    json.setRaw("methods", perMethod.str());
    json.setRaw("certificates", certJson.str());
    writeBenchJson("fig5_iso_iteration", json);
    return 0;
}
