/**
 * @file
 * Table 1 + Section 5.1.3: target problems and map-space
 * characterization.
 *
 * For every Table 1 problem: the problem shape, the estimated map-space
 * size (paper: ~1e25 for ResNet Conv_4, ~1e19 for MTTKRP_0), and the
 * (mean, std) of sampled energy normalized to the lower bound — the
 * paper reports (44.2, 231.4) for CNN-Layer and (48.0, 51.2) for
 * MTTKRP over 1 M samples; MM_SAMPLES scales our sample count.
 */
#include <iostream>

#include "bench/bench_util.hpp"
#include "costmodel/cost_model.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    const int64_t samples = envInt("MM_SAMPLES", 20000);
    banner("Table 1 / Section 5.1.3: problems and map-space statistics",
           strCat("Table 1 + Sec. 5.1.3; samples/problem=", samples));

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Table table({"problem", "bounds", "log10(|M|)", "normE_mean",
                 "normE_std", "normEDP_p50", "normEDP_p90"});

    RunningStat cnnEnergy, mttEnergy;
    for (const Problem &p : table1All()) {
        MapSpace space(arch, p);
        CostModel model(space);
        Rng rng(13);

        RunningStat energy;
        std::vector<double> edps;
        edps.reserve(size_t(samples));
        for (int64_t i = 0; i < samples; ++i) {
            Mapping m = space.randomValid(rng);
            CostResult res = model.evaluate(m);
            double normE =
                res.totalEnergyPj / model.lowerBound().energyPj;
            energy.push(normE);
            edps.push_back(res.edp() / model.lowerBound().edp());
            if (p.algo == &cnnLayerAlgo())
                cnnEnergy.push(normE);
            else
                mttEnergy.push(normE);
        }

        table.addRow({p.name, join(p.bounds, "x"),
                      fmtDouble(space.log10Size(), 4),
                      fmtDouble(energy.mean(), 4),
                      fmtDouble(energy.stddev(), 4),
                      fmtDouble(quantile(edps, 0.5), 4),
                      fmtDouble(quantile(edps, 0.9), 4)});
        std::cerr << "[table1] " << p.name << " done" << std::endl;
    }
    table.print(std::cout);

    Table summary({"algorithm", "normE_mean", "normE_std", "paper"});
    summary.addRow({"CNN-Layer", fmtDouble(cnnEnergy.mean(), 4),
                    fmtDouble(cnnEnergy.stddev(), 4), "(44.2, 231.4)"});
    summary.addRow({"MTTKRP", fmtDouble(mttEnergy.mean(), 4),
                    fmtDouble(mttEnergy.stddev(), 4), "(48.0, 51.2)"});
    std::cout << "\n";
    summary.print(std::cout);
    return 0;
}
