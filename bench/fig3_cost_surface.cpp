/**
 * @file
 * Figure 3: the non-smooth, non-convex cost surface.
 *
 * Sweeps the per-PE (L1) tile factors of two dimensions — C (input
 * channels, touches Inputs and Weights) and X (output columns, touches
 * Inputs and Outputs) — of a fixed, capacity-safe ResNet Conv_4 mapping
 * and prints the normalized-EDP grid the paper plots to motivate why
 * black-box optimization struggles. The sweep includes non-divisor tile
 * sizes, whose padded iteration spaces produce exactly the spikes
 * Section 3.1 describes. A roughness statistic (adjacent-cell EDP
 * ratios) quantifies the non-smoothness.
 */
#include <iostream>

#include "bench/bench_util.hpp"
#include "costmodel/cost_model.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    banner("Figure 3: EDP cost surface over two L1 tile-size attributes",
           "Fig. 3 + Sec. 3.1");

    AcceleratorSpec arch = AcceleratorSpec::paperDefault();
    Problem p = cnnProblem("ResNet_Conv_4", 16, 256, 256, 14, 14, 3, 3);
    // bounds: N=16 K=256 C=256 X=12 Y=12 R=3 S=3
    MapSpace space(arch, p);
    CostModel model(space);
    enum { N, K, C, X, Y, R, S };

    auto makeMapping = [&](int64_t cL1, int64_t xL1) {
        Mapping m;
        for (auto &t : m.tiling)
            t.assign(7, 1);
        m.spatial.assign(7, 1);
        auto ceilDiv = [](int64_t a, int64_t b) {
            return (a + b - 1) / b;
        };
        m.tiling[size_t(MemLevel::DRAM)][N] = 16;
        m.spatial[K] = 16;
        m.tiling[size_t(MemLevel::DRAM)][K] = 16;
        m.tiling[size_t(MemLevel::L1)][C] = cL1;
        m.tiling[size_t(MemLevel::L2)][C] = 8;
        m.tiling[size_t(MemLevel::DRAM)][C] = ceilDiv(256, 8 * cL1);
        m.tiling[size_t(MemLevel::L1)][X] = xL1;
        m.tiling[size_t(MemLevel::L2)][X] = ceilDiv(12, xL1);
        m.tiling[size_t(MemLevel::L2)][Y] = 12;
        m.tiling[size_t(MemLevel::L1)][R] = 3;
        m.tiling[size_t(MemLevel::L1)][S] = 3;
        m.loopOrder[size_t(MemLevel::DRAM)] = {C, K, N, X, Y, R, S};
        m.loopOrder[size_t(MemLevel::L2)] = {K, C, X, Y, N, R, S};
        m.loopOrder[size_t(MemLevel::L1)] = {C, X, Y, R, S, N, K};
        m.bufferAlloc[1] = {18, 9, 5}; // L2 banks: I, W, O
        m.bufferAlloc[0] = {6, 6, 4};   // L1 banks
        return m;
    };

    // Includes non-divisor points (5, 7 for X; 3, 5, 10 for C) whose
    // ceil-padded products stay within the legal window.
    const std::vector<int64_t> cTiles = {1, 2, 3, 4, 5, 6, 8, 10, 12, 16,
                                         32};
    const std::vector<int64_t> xTiles = {1, 2, 3, 4, 5, 6, 7, 12};

    std::vector<std::string> cols = {"C_tile\\X_tile"};
    for (int64_t x : xTiles)
        cols.push_back(strCat(x));
    Table table(cols);

    std::vector<std::vector<double>> grid(
        cTiles.size(), std::vector<double>(xTiles.size(), 0.0));
    for (size_t ci = 0; ci < cTiles.size(); ++ci) {
        std::vector<std::string> row = {strCat(cTiles[ci])};
        for (size_t xi = 0; xi < xTiles.size(); ++xi) {
            Mapping m = makeMapping(cTiles[ci], xTiles[xi]);
            MM_ASSERT(space.isMember(m),
                      "surface cell invalid: " + space.validityError(m));
            double edp = model.normalizedEdp(m);
            grid[ci][xi] = edp;
            row.push_back(fmtDouble(edp, 5));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    // Non-smoothness: distribution of adjacent-cell EDP ratios.
    std::vector<double> ratios;
    for (size_t ci = 0; ci < cTiles.size(); ++ci)
        for (size_t xi = 0; xi + 1 < xTiles.size(); ++xi) {
            double a = grid[ci][xi], b = grid[ci][xi + 1];
            ratios.push_back(std::max(a, b) / std::min(a, b));
        }
    for (size_t xi = 0; xi < xTiles.size(); ++xi)
        for (size_t ci = 0; ci + 1 < cTiles.size(); ++ci) {
            double a = grid[ci][xi], b = grid[ci + 1][xi];
            ratios.push_back(std::max(a, b) / std::min(a, b));
        }
    Table rough({"roughness metric", "value"});
    rough.addRow({"median adjacent-cell EDP ratio",
                  fmtDouble(quantile(ratios, 0.5), 4)});
    rough.addRow({"p90 adjacent-cell EDP ratio",
                  fmtDouble(quantile(ratios, 0.9), 4)});
    rough.addRow({"max adjacent-cell EDP ratio",
                  fmtDouble(quantile(ratios, 1.0), 4)});
    std::cout << "\n";
    rough.print(std::cout);
    std::cout << "\nA smooth surface would keep adjacent-cell ratios near "
                 "1; multiplicative jumps\nbetween neighboring tile "
                 "choices (note the non-divisor columns) are what force\n"
                 "prior work to black-box optimization (Sec. 3.1).\n";
    return 0;
}
