/**
 * @file
 * Shared infrastructure for the figure/table bench harnesses.
 *
 * Every bench binary reproduces one table or figure of the paper's
 * evaluation (see DESIGN.md, "Per-experiment index"). Binaries print
 * aligned tables with machine-readable csv blocks, answer `--list`
 * (fig5/fig6) with the registered searchers and their option schemas,
 * and scale through environment knobs:
 *
 *   MM_RUNS           independent search repetitions per point (def. 3;
 *                     the paper uses 100)
 *   MM_ITERS          iso-iteration step budget (def. 1000)
 *   MM_VTIME          iso-time virtual horizon in seconds (def. 3000)
 *   MM_WALL           iso-wall-clock budget in *real* seconds per run
 *                     (fig6; def. 0.25, 0 disables the wall-clock table)
 *   MM_SEED           base seed for all repetitions (def. 0 = the
 *                     historical per-problem seeds); recorded in every
 *                     BENCH_*.json blob
 *   MM_METHODS        comma-separated registry keys (e.g. "MM,SA")
 *                     restricting which methods fig5/fig6 run
 *   MM_RUN_THREADS    concurrent repetitions per method (def. 1 =
 *                     serial; results are bitwise thread-invariant)
 *   MM_TRAIN_SAMPLES  Phase-1 dataset size override
 *   MM_EPOCHS         Phase-1 epoch override
 *   MM_PRESET         fast (default) | paper
 *   MM_CACHE_DIR      surrogate cache location (def. ./mm_cache)
 *   MM_NO_CACHE       1 disables the cache
 *   MM_STREAM_DIR     non-empty: run Phase 1 out-of-core, streaming
 *                     labeled shards through this directory
 *   MM_SHARD_ROWS     rows per shard for the streamed path
 *   MM_SHUFFLE_WINDOW shuffle-window rows (0 = global shuffle)
 *   MM_STREAM_OVERLAP 0 disables the double-buffered shard writer
 *                     (generation then commits each shard inline;
 *                     bytes are identical either way)
 *   MM_PREFETCH_SHARDS shards the streamed trainer warms into the
 *                     reader cache ahead of the epoch order (def. 0 =
 *                     off; results are bitwise identical regardless)
 *   MM_SHARD_CACHE    decoded shards the streamed trainer caches
 *                     (def. 8)
 *   MM_NO_MMAP        1 forces stream-read fallbacks instead of mmap
 *                     for shard and surrogate-cache loads
 *   MM_EVAL_BATCH     samples per batched labeling block in Phase 1
 *                     (def. 4096; dataset bytes are identical at any
 *                     value — this only trades peak block memory
 *                     against CostModel::evaluateBatch amortization)
 *   MM_EVAL_THREADS   lanes for costmodel_perf's threaded rows (def. 1,
 *                     0 = hardware concurrency)
 *   MM_EVAL_N         mappings per shape in costmodel_perf (def. 4096)
 *   MM_EVAL_SECS      target seconds per costmodel_perf measurement
 *                     (def. 0.2)
 *   MM_BB_NODES       branch-and-bound node cap for the optimality
 *                     certificates in fig5/fig6 and for bound_perf
 *                     (def. 2000; the certificate stays valid at any
 *                     cap, it is just looser when the run is cut short)
 *
 * Searchers are constructed through the library's SearcherRegistry
 * (search/registry.hpp) and repeated through runMany
 * (search/orchestrator.hpp); the env knobs above only decide which
 * specs and budgets the benches hand to those APIs.
 *
 * Phase-1 surrogates are provisioned once per algorithm through the
 * MindMappings facade and shared across benches via the disk cache.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/stats.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"
#include "core/mind_mappings.hpp"
#include "search/ddpg.hpp"
#include "search/orchestrator.hpp"
#include "search/registry.hpp"

namespace mm::bench {

/** Env-derived bench scale. */
struct BenchEnv
{
    int runs = int(envInt("MM_RUNS", 3));
    int64_t iters = envInt("MM_ITERS", 2000);
    double vtime = envDouble("MM_VTIME", 3000.0);
    /** Iso-wall-clock budget in real seconds (0 disables fig6's table). */
    double wallSecs = envDouble("MM_WALL", 0.25);
    /** Base seed; 0 keeps the historical per-problem seeding. */
    uint64_t seed = uint64_t(envSize("MM_SEED", 0));
    /** Comma-separated registry keys filtering fig5/fig6 methods. */
    std::string methods = envStr("MM_METHODS", "");
    /** Concurrent repetitions per method (1 = serial). */
    int runThreads = int(envInt("MM_RUN_THREADS", 1));
    /** Restart chains of the parallel Phase-2 driver ("MM-P" method). */
    int chains = int(envInt("MM_CHAINS", 4));
    /** Fork-join lanes for MM-P; 0 = hardware concurrency. */
    int threads = int(envInt("MM_THREADS", 0));
    /** Phase-1 lanes (dataset labeling + training GEMMs); 0 = hw. */
    int trainThreads = int(envInt("MM_TRAIN_THREADS", 0));
    bool paperPreset = envStr("MM_PRESET", "fast") == "paper";
    /** Non-empty runs Phase 1 out-of-core through this directory. */
    std::string streamDir = envStr("MM_STREAM_DIR", "");
    /** Node cap of the certificate branch-and-bound runs. */
    int64_t bbNodes = envInt("MM_BB_NODES", 2000);
};

/** Peak resident set size of this process so far, in MiB. */
double peakRssMb();

/** The method names of Section 5.2, in the paper's order. */
const std::vector<std::string> &methodNames();

/**
 * The methods a bench should run: the paper's list (plus "MM-P" when
 * @p includeParallel), or the MM_METHODS subset when set. Unknown keys
 * raise FatalError naming the registered ones.
 */
std::vector<std::string> activeMethods(const BenchEnv &env,
                                       bool includeParallel);

/**
 * Registry spec for @p method with the bench env's options applied
 * ("MM-P" gets chains/threads, "RL" the preset-sized net).
 */
std::string methodSpec(const std::string &method, const BenchEnv &env);

/**
 * Handle shared bench CLI flags; returns true when the invocation was
 * fully served (e.g. `--list` printed the registered searchers and
 * their option schemas) and the bench should exit successfully.
 */
bool handleBenchArgs(int argc, char **argv);

/** Phase-1 options used by all benches (preset + env overrides). */
MindMappingsOptions benchOptions(const BenchEnv &env);

/**
 * Train-or-load the shared surrogate for @p algo, reporting progress to
 * stderr. Returned facade owns the surrogate.
 */
std::unique_ptr<MindMappings> provisionSurrogate(const AlgorithmSpec &algo,
                                                 const BenchEnv &env);

/** DDPG configuration sized for the bench environment. */
DdpgConfig benchDdpgConfig(const BenchEnv &env);

/** Geomean of best-so-far values at a step checkpoint across runs. */
double geomeanAtStep(const std::vector<SearchResult> &runs, int64_t step);

/** Geomean of best-so-far values at a virtual-time checkpoint. */
double geomeanAtTime(const std::vector<SearchResult> &runs, double sec);

/** Geomean of final best values across runs. */
double geomeanFinal(const std::vector<SearchResult> &runs);

/**
 * Run @p method on @p model for env.runs independent repetitions, with
 * per-run seeds derived from @p baseSeed (shifted by MM_SEED when set)
 * and MM_RUN_THREADS repetitions in flight at a time.
 */
std::vector<SearchResult>
runMethod(const std::string &method, const CostModel &model,
          Surrogate *surrogate, const SearchBudget &budget,
          const BenchEnv &env, uint64_t baseSeed);

/** Standard header line announcing a bench. */
void banner(const std::string &title, const std::string &paperRef);

// ---------------------------------------------------------------------------
// Machine-readable perf trajectory: every bench can drop a
// BENCH_<name>.json next to its table output so successive PRs have
// numbers to compare against (see README "Performance").
// ---------------------------------------------------------------------------

/** Insertion-ordered JSON object builder (values pre-serialized). */
class JsonObject
{
  public:
    JsonObject &set(const std::string &key, const std::string &v);
    JsonObject &set(const std::string &key, const char *v);
    /** Non-finite doubles serialize as null. */
    JsonObject &set(const std::string &key, double v);
    JsonObject &set(const std::string &key, int64_t v);
    JsonObject &
    set(const std::string &key, int v)
    {
        return set(key, int64_t(v));
    }
    /** Attach an already-serialized JSON value (object/array). */
    JsonObject &setRaw(const std::string &key, std::string rawJson);
    std::string str() const;

  private:
    std::vector<std::pair<std::string, std::string>> fields;
};

/** JSON array of pre-serialized values. */
class JsonArray
{
  public:
    JsonArray &add(const JsonObject &obj);
    JsonArray &addRaw(std::string rawJson);
    std::string str() const;

  private:
    std::vector<std::string> items;
};

/**
 * An object pre-filled with the bench name and the shared scale knobs
 * (preset, runs, iters, seed, threads, chains).
 */
JsonObject benchJsonHeader(const std::string &bench, const BenchEnv &env);

/**
 * Write BENCH_<name>.json into MM_BENCH_JSON_DIR (default "."); returns
 * the path written.
 */
std::string writeBenchJson(const std::string &name, const JsonObject &obj);

} // namespace mm::bench
