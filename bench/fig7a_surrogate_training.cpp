/**
 * @file
 * Figure 7a: surrogate training and test loss over epochs.
 *
 * Trains the CNN-Layer surrogate from scratch (cache bypassed) and
 * prints the per-epoch Huber loss on the train and held-out splits.
 * The paper's observations to reproduce: the test curve tracks the
 * train curve (no overfitting) and the loss flattens well before the
 * final epoch (paper: ~60 of 100 epochs; scaled here).
 */
#include <iostream>

#include "bench/bench_util.hpp"

int
main()
{
    using namespace mm;
    using namespace mm::bench;

    BenchEnv env;
    MindMappingsOptions opts = benchOptions(env);
    banner("Figure 7a: surrogate train/test loss per epoch",
           strCat("Fig. 7a + Sec. 5.5; samples=", opts.phase1.data.samples,
                  " epochs=", opts.phase1.train.epochs));

    Table table({"epoch", "lr", "train_loss", "test_loss"});
    Phase1Result result = trainSurrogate(
        AcceleratorSpec::paperDefault(), cnnLayerAlgo(), opts.phase1,
        [&](const EpochReport &r) {
            table.addRow({strCat(r.epoch), fmtDouble(r.lr, 4),
                          fmtDouble(r.trainLoss, 5),
                          fmtDouble(r.testLoss, 5)});
            std::cerr << "[fig7a] epoch " << r.epoch << " train "
                      << fmtDouble(r.trainLoss, 4) << " test "
                      << fmtDouble(r.testLoss, 4) << std::endl;
        });
    table.print(std::cout);

    const auto &hist = result.history;
    double first = hist.front().trainLoss;
    double last = hist.back().trainLoss;
    double mid = hist[hist.size() * 6 / 10].trainLoss;
    Table summary({"observation", "value", "paper"});
    summary.addRow({"train-loss reduction (first/last)",
                    fmtDouble(first / last, 4), ">1 (converges)"});
    summary.addRow(
        {"test/train gap at end",
         fmtDouble(hist.back().testLoss / hist.back().trainLoss, 4),
         "~1 (no overfit)"});
    summary.addRow({"loss at 60% epochs vs final", fmtDouble(mid / last, 4),
                    "~1 (converged by ~60%)"});
    summary.addRow({"dataset generation time (s)",
                    fmtDouble(result.datasetSec, 4), "-"});
    summary.addRow({"training time (s)", fmtDouble(result.trainSec, 4),
                    "-"});
    std::cout << "\n";
    summary.print(std::cout);

    JsonObject json = benchJsonHeader("fig7a_surrogate_training", env);
    json.set("samples", int64_t(opts.phase1.data.samples))
        .set("epochs", int64_t(hist.size()))
        .set("dataset_sec", result.datasetSec)
        .set("train_sec", result.trainSec)
        .set("sec_per_epoch", result.trainSec / double(hist.size()))
        .set("final_train_loss", last)
        .set("final_test_loss", hist.back().testLoss);
    writeBenchJson("fig7a_surrogate_training", json);
    return 0;
}
